//! Consistent hashing over content-addressed fingerprints.
//!
//! Each shard owns `vnodes` points on a `u64` ring; a key routes to the
//! shard owning the first point at or after the key's hash (wrapping).
//! Virtual nodes smooth the split: at 64 vnodes the worst shard's share
//! stays within a few tens of percent of fair, which is plenty when the
//! payoff of consistency is cache locality rather than strict balance —
//! the same loop must *always* land on the same shard so exactly one
//! shard pays its compile cost and keeps its artifacts hot.
//!
//! Points are keyed on the shard *index* (not its address), so the
//! routing function depends only on `(shards, vnodes)`: a cluster
//! restarted on different ports routes identically, which is what lets
//! a shard's persisted cache log stay valid across supervisor restarts.
//!
//! FNV's raw high bits avalanche poorly (fine for cache keys, biased as
//! ring coordinates), so points and keys go through the same
//! fmix64-style finalizer the fault injector uses.

use ltsp_cache::{Fingerprint, FingerprintHasher};

/// Default virtual nodes per shard. 256 keeps the hash-space split
/// within a few percent of even at small shard counts (64 left the
/// worst shard owning ~40% of a 3-shard ring, which caps closed-loop
/// cluster throughput well below linear); ring build and lookup stay
/// trivially cheap at `shards × 256` points.
pub const DEFAULT_VNODES: usize = 256;

/// Folds a 128-bit fingerprint to a well-mixed `u64` ring coordinate.
fn mix(fp: Fingerprint) -> u64 {
    let mut x = (fp.0 as u64) ^ ((fp.0 >> 64) as u64);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// A consistent-hash ring: `shards × vnodes` sorted points.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, shard index)`, sorted by point.
    points: Vec<(u64, u32)>,
    shards: usize,
}

impl Ring {
    /// Builds the ring for `shards` shards (`vnodes` points each).
    /// Deterministic: same `(shards, vnodes)` ⇒ same routing, every run.
    pub fn new(shards: usize, vnodes: usize) -> Ring {
        let shards = shards.max(1);
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(shards * vnodes);
        for s in 0..shards {
            for v in 0..vnodes {
                let mut h = FingerprintHasher::new();
                h.write_str("ring-v1");
                h.write_u64(s as u64);
                h.write_u64(v as u64);
                points.push((mix(h.finish()), s as u32));
            }
        }
        points.sort_unstable();
        Ring { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The failover preference order for `key`: the owning shard first,
    /// then each distinct successor around the ring. Every shard appears
    /// exactly once, so walking this list is bounded failover.
    pub fn preference(&self, key: Fingerprint) -> Vec<usize> {
        let h = mix(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut order = Vec::with_capacity(self.shards);
        let mut seen = vec![false; self.shards];
        for i in 0..self.points.len() {
            let (_, s) = self.points[(start + i) % self.points.len()];
            if !seen[s as usize] {
                seen[s as usize] = true;
                order.push(s as usize);
                if order.len() == self.shards {
                    break;
                }
            }
        }
        order
    }

    /// The shard owning `key` (the head of [`Ring::preference`]).
    pub fn owner(&self, key: Fingerprint) -> usize {
        self.preference(key)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_total() {
        let a = Ring::new(3, DEFAULT_VNODES);
        let b = Ring::new(3, DEFAULT_VNODES);
        for i in 0..256 {
            let k = Fingerprint::of_str(&format!("loop-{i}"));
            assert_eq!(a.owner(k), b.owner(k), "same ring, same owner");
            let pref = a.preference(k);
            let mut sorted = pref.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2], "every shard appears once");
        }
    }

    #[test]
    fn balance_is_roughly_fair() {
        let ring = Ring::new(3, DEFAULT_VNODES);
        let mut counts = [0usize; 3];
        for i in 0..9_000 {
            counts[ring.owner(Fingerprint::of_str(&format!("key-{i}")))] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            // Fair is 3000; consistent hashing at 64 vnodes stays well
            // inside [1500, 4500].
            assert!((1500..4500).contains(&c), "shard {s} got {c} of 9000");
        }
    }

    #[test]
    fn single_shard_ring_routes_everything_to_it() {
        let ring = Ring::new(1, 8);
        for i in 0..32 {
            assert_eq!(ring.owner(Fingerprint::of_str(&format!("k{i}"))), 0);
        }
    }

    #[test]
    fn failover_order_differs_from_owner_order() {
        // Successor lists must not all collapse to the same permutation:
        // different keys should spread their second choices too.
        let ring = Ring::new(4, DEFAULT_VNODES);
        let mut second = [0usize; 4];
        for i in 0..4_000 {
            second[ring.preference(Fingerprint::of_str(&format!("k{i}")))[1]] += 1;
        }
        assert!(
            second.iter().all(|&c| c > 0),
            "every shard serves as some key's failover: {second:?}"
        );
    }
}
