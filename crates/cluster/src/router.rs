//! `ltspr` — the shard router.
//!
//! A line-JSON proxy in front of N `ltspd` shards. Per client line:
//!
//! 1. Parse just enough to classify the op and derive the routing key
//!    (the loop text's fingerprint for loop-carrying ops; the raw line's
//!    otherwise, including unparseable lines — the owning shard renders
//!    the identical protocol error the client would get directly).
//! 2. Walk the ring's preference order ([`crate::Ring::preference`]),
//!    live shards first. Forward the client's **raw line** and proxy the
//!    shard's **raw response line** back byte-for-byte: responses are
//!    pure functions of requests, so the router adds no bytes and the
//!    determinism contract survives the hop.
//! 3. Fail over on dead connections (connect/write/read errors, EOF,
//!    response deadline) and on `draining`/`overloaded` statuses, up to
//!    `max_attempts` distinct shards. A failed shard is marked dead for
//!    `cooldown` and skipped until it expires (one connect timeout per
//!    cooldown window, not per request). Exhausted attempts answer
//!    `status:"error"` — never a silent drop, never a wedged client.
//!
//! `stats` and `metrics` are answered by the router itself — `metrics`
//! scrapes every shard and re-exposes each sample with a `shard="N"`
//! label plus the router's own routing/failover families. `shutdown`
//! propagates: every shard is told to drain, the client gets the usual
//! `draining` ack, then the router itself drains.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ltsp_cache::Fingerprint;
use ltsp_server::proto::{push_str_field, push_u64_field};
use ltsp_server::{parse_request, ReqOp, Response};
use ltsp_telemetry::prom::{self, PromSnapshot};
use ltsp_telemetry::{json, Event, Telemetry};

use crate::ring::{Ring, DEFAULT_VNODES};

/// Drain-flag / accept poll cadence (mirrors the daemon's).
const POLL: Duration = Duration::from_millis(25);

/// Router configuration.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Shard addresses in shard-index order (ring position = index).
    pub shard_addrs: Vec<String>,
    /// Virtual nodes per shard on the ring.
    pub vnodes: usize,
    /// Distinct shards tried per request before answering `error`
    /// (0 = every shard once).
    pub max_attempts: usize,
    /// Per-shard connect timeout.
    pub connect_timeout: Duration,
    /// Per-request response deadline on a shard connection.
    pub read_timeout: Duration,
    /// How long a failed shard is skipped before being retried.
    pub cooldown: Duration,
    /// Drain gracefully on SIGTERM/SIGINT (process-global; binaries
    /// turn it on).
    pub handle_signals: bool,
    /// Supervisor-shared per-shard respawn counters, exposed through
    /// `metrics` when present.
    pub respawns: Option<Arc<Vec<AtomicU64>>>,
    /// Telemetry sink for lifecycle events.
    pub telemetry: Telemetry,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            addr: "127.0.0.1:7199".to_string(),
            shard_addrs: Vec::new(),
            vnodes: DEFAULT_VNODES,
            max_attempts: 0,
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(60),
            cooldown: Duration::from_secs(1),
            handle_signals: false,
            respawns: None,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// Per-shard live state and counters.
#[derive(Debug)]
struct ShardState {
    addr: String,
    /// Responses proxied from this shard.
    routed: AtomicU64,
    /// Failures observed against this shard (I/O, draining, overloaded).
    failed: AtomicU64,
    /// Millis-since-router-start until which the shard is skipped
    /// (0 = considered live).
    dead_until_ms: AtomicU64,
}

/// Shared router state.
struct RouterState {
    cfg: RouterConfig,
    ring: Ring,
    shards: Vec<ShardState>,
    started: Instant,
    draining: AtomicBool,
    connections: AtomicU64,
    /// Client lines handled (any outcome).
    requests: AtomicU64,
    /// Responses proxied from a shard.
    proxied: AtomicU64,
    /// Lines answered by the router itself (stats/metrics/shutdown/
    /// draining/exhausted).
    local: AtomicU64,
    /// Times a request moved past a failed/draining/overloaded shard.
    failovers: AtomicU64,
    /// Requests answered `error` after every candidate failed.
    exhausted: AtomicU64,
}

impl RouterState {
    fn now_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    fn mark_dead(&self, shard: usize) {
        let until = self.now_ms() + self.cfg.cooldown.as_millis() as u64 + 1;
        self.shards[shard]
            .dead_until_ms
            .store(until, Ordering::Relaxed);
    }

    fn mark_live(&self, shard: usize) {
        self.shards[shard].dead_until_ms.store(0, Ordering::Relaxed);
    }

    fn is_dead(&self, shard: usize) -> bool {
        let until = self.shards[shard].dead_until_ms.load(Ordering::Relaxed);
        until != 0 && self.now_ms() < until
    }

    fn start_drain(&self, why: &str) {
        if !self.draining.swap(true, Ordering::SeqCst) && self.cfg.telemetry.is_enabled() {
            self.cfg.telemetry.emit(Event::ServerLifecycle {
                phase: "drain",
                detail: format!("router: {why}"),
            });
        }
    }

    /// The effective failover budget: distinct shards tried per request.
    fn max_attempts(&self) -> usize {
        let n = self.shards.len();
        if self.cfg.max_attempts == 0 {
            n
        } else {
            self.cfg.max_attempts.min(n).max(1)
        }
    }
}

/// A running router: bound address plus lifecycle control.
pub struct RouterHandle {
    addr: SocketAddr,
    state: Arc<RouterState>,
    join: thread::JoinHandle<()>,
}

impl RouterHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once the router has fully drained and stopped.
    pub fn is_finished(&self) -> bool {
        self.join.is_finished()
    }

    /// True once drain has started (client `shutdown`, signal, or
    /// [`RouterHandle::shutdown`]).
    pub fn draining(&self) -> bool {
        self.state.draining.load(Ordering::SeqCst)
    }

    /// Initiates drain of the router itself (shards are left running;
    /// the supervisor owns their lifecycle) and waits for it to finish.
    pub fn shutdown(self) {
        self.state.start_drain("handle shutdown");
        let _ = self.join.join();
    }

    /// Waits for the router to drain on its own (client `shutdown`
    /// request or a signal).
    pub fn wait(self) {
        let _ = self.join.join();
    }
}

/// The routing key of one raw request line: the loop text's fingerprint
/// when the line parses to a loop-carrying request, the raw line's
/// otherwise. Pure, so tests can predict placements.
pub fn routing_key(line: &str) -> Fingerprint {
    match parse_request(line) {
        Ok(req) if !req.loop_text.is_empty() => Fingerprint::of_str(&req.loop_text),
        _ => Fingerprint::of_str(line.trim()),
    }
}

/// Extracts the `status` field of a rendered response line without a
/// full JSON parse. The envelope always opens `{"id":"...","status":"…"`
/// and `id` is JSON-escaped, so the first `","status":"` occurrence
/// belongs to the envelope (an embedded one inside `id` would carry
/// escaped quotes and not match).
fn response_status(line: &str) -> &str {
    let Some(i) = line.find("\",\"status\":\"") else {
        return "";
    };
    let rest = &line[i + 12..];
    match rest.find('"') {
        Some(j) => &rest[..j],
        None => "",
    }
}

/// One upstream shard connection owned by a client thread: raw stream
/// plus read-ahead buffer for line framing.
struct Upstream {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Upstream {
    fn connect(addr: &str, connect_timeout: Duration) -> std::io::Result<Upstream> {
        let sa = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other(format!("unresolvable shard addr {addr}")))?;
        let stream = TcpStream::connect_timeout(&sa, connect_timeout)?;
        let _ = stream.set_nodelay(true);
        stream.set_read_timeout(Some(POLL))?;
        stream.set_write_timeout(Some(Duration::from_secs(5)))?;
        Ok(Upstream {
            stream,
            buf: Vec::new(),
        })
    }

    fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.stream.write_all(b"\n")
    }

    /// Reads one `\n`-terminated line (returned **with** its newline,
    /// byte-exact) within `deadline`.
    fn read_line(&mut self, deadline: Duration) -> std::io::Result<String> {
        let t0 = Instant::now();
        let mut chunk = [0u8; 16 * 1024];
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return String::from_utf8(line).map_err(|_| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "non-UTF-8 response from shard",
                    )
                });
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "shard closed mid-response",
                    ))
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if t0.elapsed() >= deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "shard response deadline exceeded",
                        ));
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Binds and routes in a background thread; returns once the listener
/// is accepting. Used by in-process tests and the cluster supervisor.
///
/// # Errors
///
/// Propagates the bind failure, and rejects an empty shard list.
pub fn spawn_router(cfg: RouterConfig) -> std::io::Result<RouterHandle> {
    if cfg.shard_addrs.is_empty() {
        return Err(std::io::Error::other("router needs at least one shard"));
    }
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let ring = Ring::new(cfg.shard_addrs.len(), cfg.vnodes);
    let shards = cfg
        .shard_addrs
        .iter()
        .map(|a| ShardState {
            addr: a.clone(),
            routed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            dead_until_ms: AtomicU64::new(0),
        })
        .collect();
    let state = Arc::new(RouterState {
        ring,
        shards,
        started: Instant::now(),
        draining: AtomicBool::new(false),
        connections: AtomicU64::new(0),
        requests: AtomicU64::new(0),
        proxied: AtomicU64::new(0),
        local: AtomicU64::new(0),
        failovers: AtomicU64::new(0),
        exhausted: AtomicU64::new(0),
        cfg,
    });
    if state.cfg.handle_signals {
        install_signal_drain(&state);
    }
    let st = Arc::clone(&state);
    let join = thread::Builder::new()
        .name("ltspr-accept".to_string())
        .spawn(move || run(listener, st))
        .expect("spawn ltspr accept thread");
    Ok(RouterHandle { addr, state, join })
}

/// Installs a SIGTERM/SIGINT hook that drains this router. Drain
/// propagates: the shards are told to shut down too, because a signaled
/// `ltspc serve --cluster` owns the whole cluster's lifecycle.
#[cfg(unix)]
fn install_signal_drain(state: &Arc<RouterState>) {
    use std::sync::OnceLock;
    static TERM_FLAG: OnceLock<&'static AtomicBool> = OnceLock::new();
    extern "C" fn on_term(_sig: i32) {
        if let Some(flag) = TERM_FLAG.get() {
            flag.store(true, Ordering::SeqCst);
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let flag: &'static AtomicBool =
        TERM_FLAG.get_or_init(|| Box::leak(Box::new(AtomicBool::new(false))));
    let handler = on_term as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
    let st = Arc::downgrade(state);
    thread::Builder::new()
        .name("ltspr-signal".to_string())
        .spawn(move || loop {
            thread::sleep(POLL);
            let Some(state) = st.upgrade() else { return };
            if flag.load(Ordering::SeqCst) {
                broadcast_shutdown(&state);
                state.start_drain("signal");
                return;
            }
            if state.draining.load(Ordering::SeqCst) {
                return;
            }
        })
        .ok();
}

#[cfg(not(unix))]
fn install_signal_drain(_state: &Arc<RouterState>) {}

fn run(listener: TcpListener, state: Arc<RouterState>) {
    let tel = state.cfg.telemetry.clone();
    if tel.is_enabled() {
        tel.emit(Event::ServerLifecycle {
            phase: "listen",
            detail: format!(
                "router {} over {} shard(s)",
                listener
                    .local_addr()
                    .map_or_else(|_| state.cfg.addr.clone(), |a| a.to_string()),
                state.shards.len()
            ),
        });
    }
    listener
        .set_nonblocking(true)
        .expect("set_nonblocking on router listener");
    let mut readers = Vec::new();
    while !state.draining.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let state = Arc::clone(&state);
                readers.push(
                    thread::Builder::new()
                        .name("ltspr-conn".to_string())
                        .spawn(move || conn_loop(stream, &state))
                        .expect("spawn ltspr conn thread"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => break,
        }
    }
    drop(listener);
    for r in readers {
        let _ = r.join();
    }
    if tel.is_enabled() {
        tel.emit(Event::ServerLifecycle {
            phase: "stopped",
            detail: "router".to_string(),
        });
    }
}

/// One client connection: read a line, answer it (proxy or local), write
/// the response, in order. A stalled client stalls only its own thread.
fn conn_loop(mut stream: TcpStream, state: &Arc<RouterState>) {
    if stream.set_nonblocking(false).is_err() || stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    state.connections.fetch_add(1, Ordering::Relaxed);
    let mut upstreams: HashMap<usize, Upstream> = HashMap::new();
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    'outer: loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if state.draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let line_bytes: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line_bytes);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            state.requests.fetch_add(1, Ordering::Relaxed);
            let (reply, is_shutdown) = handle_line(state, &mut upstreams, line);
            if stream.write_all(reply.as_bytes()).is_err() {
                break 'outer;
            }
            if is_shutdown {
                state.start_drain("shutdown request");
                break 'outer;
            }
        }
    }
    state.connections.fetch_sub(1, Ordering::Relaxed);
}

/// Classifies one raw line and produces the full reply line (with
/// trailing newline). The bool is true for a `shutdown` ack, after
/// which the caller drains.
fn handle_line(
    state: &Arc<RouterState>,
    upstreams: &mut HashMap<usize, Upstream>,
    line: &str,
) -> (String, bool) {
    match parse_request(line) {
        Ok(req) if state.draining.load(Ordering::SeqCst) => {
            state.local.fetch_add(1, Ordering::Relaxed);
            let resp = Response::error(&req.id, "draining", "router is draining");
            (render_line(&resp), false)
        }
        Ok(req) => match req.op {
            ReqOp::Shutdown => {
                state.local.fetch_add(1, Ordering::Relaxed);
                broadcast_shutdown(state);
                let ack = Response {
                    id: req.id.clone(),
                    status: "draining",
                    cache: "-",
                    body: ",\"op\":\"shutdown\"".to_string(),
                    timings: None,
                };
                (render_line(&ack), true)
            }
            ReqOp::Stats => {
                state.local.fetch_add(1, Ordering::Relaxed);
                (render_line(&stats_response(state, &req.id)), false)
            }
            ReqOp::Metrics => {
                state.local.fetch_add(1, Ordering::Relaxed);
                (render_line(&metrics_response(state, &req.id)), false)
            }
            _ => {
                let key = if req.loop_text.is_empty() {
                    Fingerprint::of_str(line)
                } else {
                    Fingerprint::of_str(&req.loop_text)
                };
                (proxy(state, upstreams, line, &req.id, key), false)
            }
        },
        Err(e) if state.draining.load(Ordering::SeqCst) => {
            state.local.fetch_add(1, Ordering::Relaxed);
            let resp = Response::error(&e.id, "draining", "router is draining");
            (render_line(&resp), false)
        }
        // Malformed lines are proxied too: the owning shard renders the
        // exact protocol error a direct client would see.
        Err(e) => (
            proxy(state, upstreams, line, &e.id, Fingerprint::of_str(line)),
            false,
        ),
    }
}

fn render_line(resp: &Response) -> String {
    let mut line = resp.render();
    line.push('\n');
    line
}

/// Proxies one raw line along the key's preference order. Returns the
/// reply line (with newline) — a shard's response byte-for-byte, or the
/// router's `error` once every candidate failed.
fn proxy(
    state: &Arc<RouterState>,
    upstreams: &mut HashMap<usize, Upstream>,
    line: &str,
    id: &str,
    key: Fingerprint,
) -> String {
    let pref = state.ring.preference(key);
    // Live shards first (in preference order), dead-marked ones as a
    // last resort so a stale mark can't black-hole the whole key space.
    let mut candidates: Vec<usize> = pref
        .iter()
        .copied()
        .filter(|&s| !state.is_dead(s))
        .collect();
    candidates.extend(pref.iter().copied().filter(|&s| state.is_dead(s)));
    candidates.truncate(state.max_attempts());
    let total = candidates.len();
    let mut last_failure = String::from("no shard candidates");
    for (attempt, shard) in candidates.into_iter().enumerate() {
        let outcome = try_shard(state, upstreams, shard, line);
        match outcome {
            Ok(reply) => {
                let status = response_status(&reply);
                if (status == "draining" || status == "overloaded") && attempt + 1 < total {
                    state.shards[shard].failed.fetch_add(1, Ordering::Relaxed);
                    state.failovers.fetch_add(1, Ordering::Relaxed);
                    if status == "draining" {
                        // A draining shard stays draining; stop offering
                        // it requests and drop the connection (it will
                        // close once drained anyway).
                        state.mark_dead(shard);
                        upstreams.remove(&shard);
                    }
                    last_failure = format!("shard {shard} {status}");
                    continue;
                }
                state.mark_live(shard);
                state.shards[shard].routed.fetch_add(1, Ordering::Relaxed);
                state.proxied.fetch_add(1, Ordering::Relaxed);
                return reply;
            }
            Err(e) => {
                state.shards[shard].failed.fetch_add(1, Ordering::Relaxed);
                state.mark_dead(shard);
                upstreams.remove(&shard);
                if attempt + 1 < total {
                    state.failovers.fetch_add(1, Ordering::Relaxed);
                }
                last_failure = format!("shard {shard} ({}): {e}", state.shards[shard].addr);
            }
        }
    }
    state.exhausted.fetch_add(1, Ordering::Relaxed);
    state.local.fetch_add(1, Ordering::Relaxed);
    let resp = Response::error(
        id,
        "error",
        &format!("no shard available after {total} attempt(s); last: {last_failure}"),
    );
    render_line(&resp)
}

/// One attempt against one shard: connect (or reuse), send, read the
/// response line within the deadline.
fn try_shard(
    state: &Arc<RouterState>,
    upstreams: &mut HashMap<usize, Upstream>,
    shard: usize,
    line: &str,
) -> std::io::Result<String> {
    if let std::collections::hash_map::Entry::Vacant(e) = upstreams.entry(shard) {
        e.insert(Upstream::connect(
            &state.shards[shard].addr,
            state.cfg.connect_timeout,
        )?);
    }
    let up = upstreams.get_mut(&shard).expect("just inserted");
    up.send_line(line)?;
    up.read_line(state.cfg.read_timeout)
}

/// Best-effort `shutdown` to every shard (drain propagation). Dead
/// shards are skipped silently; the supervisor reaps processes anyway.
fn broadcast_shutdown(state: &RouterState) {
    for s in &state.shards {
        if let Ok(mut up) = Upstream::connect(&s.addr, state.cfg.connect_timeout) {
            let _ = up.send_line("{\"op\":\"shutdown\",\"id\":\"ltspr-drain\"}");
            let _ = up.read_line(Duration::from_secs(5));
        }
    }
}

/// The router's own `stats` body (the per-shard view lives in
/// `metrics`; `stats` stays a flat cheap snapshot like the daemon's).
fn stats_response(state: &RouterState, id: &str) -> Response {
    let mut body = String::new();
    push_str_field(&mut body, "op", "stats");
    for (key, v) in [
        ("router_requests", &state.requests),
        ("router_proxied", &state.proxied),
        ("router_local", &state.local),
        ("router_failovers", &state.failovers),
        ("router_retries_exhausted", &state.exhausted),
        ("router_connections", &state.connections),
    ] {
        push_u64_field(&mut body, key, v.load(Ordering::Relaxed));
    }
    push_u64_field(&mut body, "router_shards", state.shards.len() as u64);
    Response {
        id: id.to_string(),
        status: "ok",
        cache: "-",
        body,
        timings: None,
    }
}

/// Scrapes one shard's `{"op":"metrics"}` snapshot.
fn scrape_shard(state: &RouterState, shard: usize) -> Option<PromSnapshot> {
    let mut up = Upstream::connect(&state.shards[shard].addr, state.cfg.connect_timeout).ok()?;
    up.send_line("{\"op\":\"metrics\",\"id\":\"ltspr-scrape\"}")
        .ok()?;
    let line = up.read_line(Duration::from_secs(5)).ok()?;
    let v = json::parse(line.trim()).ok()?;
    let text = v.get("metrics")?.as_str()?.to_string();
    PromSnapshot::parse(&text).ok()
}

/// The aggregated cluster snapshot: router families first, then every
/// shard's samples re-labeled with `shard="N"`.
fn render_cluster_prometheus(state: &RouterState) -> String {
    let mut out = String::new();
    for (name, kind, v) in [
        ("ltsp_router_requests_total", "counter", &state.requests),
        ("ltsp_router_proxied_total", "counter", &state.proxied),
        ("ltsp_router_local_total", "counter", &state.local),
        ("ltsp_router_failovers_total", "counter", &state.failovers),
        (
            "ltsp_router_retries_exhausted_total",
            "counter",
            &state.exhausted,
        ),
        ("ltsp_router_connections", "gauge", &state.connections),
    ] {
        prom::push_type(&mut out, name, kind);
        prom::push_sample(&mut out, name, &[], v.load(Ordering::Relaxed) as f64);
    }
    let scrapes: Vec<Option<PromSnapshot>> = (0..state.shards.len())
        .map(|i| scrape_shard(state, i))
        .collect();
    for (name, kind, get) in [
        (
            "ltsp_shard_routed_total",
            "counter",
            (|s: &ShardState| s.routed.load(Ordering::Relaxed)) as fn(&ShardState) -> u64,
        ),
        ("ltsp_shard_failed_total", "counter", |s: &ShardState| {
            s.failed.load(Ordering::Relaxed)
        }),
    ] {
        prom::push_type(&mut out, name, kind);
        for (i, s) in state.shards.iter().enumerate() {
            let idx = i.to_string();
            prom::push_sample(&mut out, name, &[("shard", &idx)], get(s) as f64);
        }
    }
    prom::push_type(&mut out, "ltsp_shard_up", "gauge");
    for (i, scrape) in scrapes.iter().enumerate() {
        let idx = i.to_string();
        prom::push_sample(
            &mut out,
            "ltsp_shard_up",
            &[("shard", &idx)],
            f64::from(u8::from(scrape.is_some())),
        );
    }
    if let Some(respawns) = &state.cfg.respawns {
        prom::push_type(&mut out, "ltsp_shard_respawns_total", "counter");
        for (i, r) in respawns.iter().enumerate() {
            let idx = i.to_string();
            prom::push_sample(
                &mut out,
                "ltsp_shard_respawns_total",
                &[("shard", &idx)],
                r.load(Ordering::Relaxed) as f64,
            );
        }
    }
    for (i, scrape) in scrapes.iter().enumerate() {
        let Some(snap) = scrape else { continue };
        let idx = i.to_string();
        for s in &snap.samples {
            let mut labels: Vec<(&str, &str)> = Vec::with_capacity(s.labels.len() + 1);
            labels.push(("shard", &idx));
            for (k, v) in &s.labels {
                labels.push((k, v));
            }
            prom::push_sample(&mut out, &s.name, &labels, s.value);
        }
    }
    out
}

fn metrics_response(state: &RouterState, id: &str) -> Response {
    let mut body = String::new();
    push_str_field(&mut body, "op", "metrics");
    push_str_field(&mut body, "metrics", &render_cluster_prometheus(state));
    Response {
        id: id.to_string(),
        status: "ok",
        cache: "-",
        body,
        timings: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_status_extracts_envelope_status() {
        assert_eq!(
            response_status(r#"{"id":"a","status":"ok","cache":"hit"}"#),
            "ok"
        );
        assert_eq!(
            response_status(r#"{"id":"x","status":"draining","cache":"-"}"#),
            "draining"
        );
        // An id trying to smuggle a status arrives escaped and must not
        // fool the extractor.
        let hostile = Response::error("evil\",\"status\":\"ok", "error", "nope").render();
        assert_eq!(response_status(&hostile), "error");
        assert_eq!(response_status("not json"), "");
    }

    #[test]
    fn routing_key_canonicalizes_on_loop_text() {
        let lp = "loop a {\\n}";
        let a = format!(r#"{{"op":"compile","id":"1","loop":"{lp}"}}"#);
        let b = format!(r#"{{"op":"verify","id":"2","loop":"{lp}"}}"#);
        // Same loop, different op/id: same shard (cache locality).
        assert_eq!(routing_key(&a), routing_key(&b));
        // Loopless and unparseable lines key on the raw line.
        assert_eq!(
            routing_key(r#"{"op":"ping"}"#),
            Fingerprint::of_str(r#"{"op":"ping"}"#)
        );
        assert_eq!(routing_key("junk"), Fingerprint::of_str("junk"));
    }

    #[test]
    fn spawn_rejects_empty_shard_list() {
        let Err(err) = spawn_router(RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            ..RouterConfig::default()
        }) else {
            panic!("empty shard list must be rejected");
        };
        assert!(err.to_string().contains("at least one shard"));
    }
}
