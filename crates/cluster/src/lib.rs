//! # ltsp-cluster — sharded serving for `ltspd`
//!
//! One `ltspd` process is the single-machine serving ceiling, and its
//! caches die with it. This crate scales the serving layer out while
//! keeping every protocol guarantee the single process makes:
//!
//! - [`ring`] — a consistent-hash ring over the workspace's
//!   content-addressed fingerprints ([`ltsp_cache::Fingerprint`]).
//!   Requests for the same loop always land on the same shard, so each
//!   shard's compile/result caches stay hot for its slice of the key
//!   space and the cluster-wide hit rate matches a single process's.
//! - [`router`] — `ltspr`, a line-JSON proxy speaking the exact
//!   `ltspd` wire protocol. It forwards the client's raw request line
//!   and the shard's raw response line **byte-for-byte** (responses are
//!   pure functions of requests, so the determinism contract survives
//!   the extra hop), and fails over with bounded retry when a shard is
//!   dead, draining, or overloaded. Exhausted retries answer `error` —
//!   a request is never silently dropped.
//! - [`supervisor`] — cluster lifecycle glue behind
//!   `ltspc serve --cluster N`: spawns the shard processes, respawns
//!   crashed ones (each shard's persistent cache log makes the respawn
//!   warm — see [`ltsp_cache::persist`]), propagates graceful drain,
//!   and reaps everything at shutdown.
//!
//! The router's `{"op":"metrics"}` aggregates every shard's Prometheus
//! snapshot (re-labeled with `shard="N"`) plus its own routing/failover
//! counters through the same `ltsp_telemetry::prom` renderer, so
//! `ltspc top` and `loadgen` work unchanged against a cluster.

#![warn(missing_docs)]

pub mod ring;
pub mod router;
pub mod supervisor;

pub use ring::Ring;
pub use router::{routing_key, spawn_router, RouterConfig, RouterHandle};
pub use supervisor::{run_cluster, ClusterConfig};
