//! Deterministic address streams derived from IR access patterns.

use std::collections::VecDeque;

use ltsp_ir::{AccessPattern, LoopIr, MemRefId, SplitMix64};

/// How streams behave across loop *entries* (executions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamMode {
    /// Every entry replays the same addresses (small working set revisited
    /// each call — e.g. the h264ref motion-search loop, which stays L1
    /// warm).
    Restart,
    /// Entries keep walking forward (streaming over a large data set).
    Progressive,
}

#[derive(Debug, Clone)]
struct ChaseState {
    /// Recently produced `(iteration, node address)` pairs; pipeline stages
    /// read a bounded distance into the past.
    recent: VecDeque<(u64, u64)>,
    next_iter: u64,
    addr: u64,
    rng: SplitMix64,
    /// Seed to restore on entry restarts so the walk replays exactly.
    rng_seed: u64,
}

/// Generates the concrete address visited by each memory reference at each
/// source iteration. Deterministic given the seed.
///
/// Data-dependent references use stateless hashing so that a prefetch
/// stream planted `d` iterations ahead produces exactly the future
/// addresses of its demand reference; pointer chases are stateful walks.
#[derive(Debug, Clone)]
pub struct AddressStreams {
    patterns: Vec<AccessPattern>,
    mode: StreamMode,
    seed: u64,
    /// Cumulative iterations completed in earlier entries (progressive
    /// mode offsets streams by this).
    cumulative: u64,
    /// Highest iteration seen this entry (to advance `cumulative`).
    entry_high: u64,
    chases: Vec<Option<ChaseState>>,
}

fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut r = SplitMix64::new(
        seed ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    );
    r.next_u64()
}

/// Deterministic per-reference region base for patterns that do not carry
/// one (deref targets), spread far apart so regions never overlap.
fn region_base(refidx: usize) -> u64 {
    0x1000_0000_0000 + (refidx as u64) * 0x1_0000_0000
}

impl AddressStreams {
    /// Builds streams for every memory reference of a loop.
    pub fn new(lp: &LoopIr, mode: StreamMode, seed: u64) -> Self {
        let patterns: Vec<AccessPattern> =
            lp.memrefs().iter().map(|m| m.pattern().clone()).collect();
        let chases = patterns
            .iter()
            .map(|p| {
                if let AccessPattern::PointerChase { base, .. } = p {
                    Some(ChaseState {
                        recent: VecDeque::new(),
                        next_iter: 0,
                        addr: *base,
                        rng: SplitMix64::new(seed ^ 0xC0FF_EE00),
                        rng_seed: seed ^ 0xC0FF_EE00,
                    })
                } else {
                    None
                }
            })
            .collect();
        AddressStreams {
            patterns,
            mode,
            seed,
            cumulative: 0,
            entry_high: 0,
            chases,
        }
    }

    /// Starts a new loop entry. In progressive mode, streams continue past
    /// the iterations consumed so far; in restart mode they replay.
    pub fn begin_entry(&mut self) {
        if self.mode == StreamMode::Progressive {
            self.cumulative += self.entry_high;
        }
        self.entry_high = 0;
        if self.mode == StreamMode::Restart {
            // Chase walks restart from their base.
            for (idx, ch) in self.chases.iter_mut().enumerate() {
                if let Some(c) = ch {
                    if let AccessPattern::PointerChase { base, .. } = &self.patterns[idx] {
                        c.recent.clear();
                        c.next_iter = 0;
                        c.addr = *base;
                        c.rng = SplitMix64::new(c.rng_seed);
                    }
                }
            }
        }
    }

    fn global_iter(&self, iter: u64) -> u64 {
        self.cumulative + iter
    }

    fn chase_node_addr(&mut self, refidx: usize, iter: u64) -> u64 {
        let (node_bytes, region_bytes, locality, base) = match &self.patterns[refidx] {
            AccessPattern::PointerChase {
                base,
                node_bytes,
                region_bytes,
                locality,
            } => (*node_bytes, *region_bytes, *locality, *base),
            _ => unreachable!("chase_node_addr on non-chase"),
        };
        // In progressive mode the walk continues across entries, so the
        // logical iteration is the global one.
        let iter = match self.mode {
            StreamMode::Progressive => self.global_iter(iter),
            StreamMode::Restart => iter,
        };
        let st = self.chases[refidx].as_mut().expect("chase state exists");
        if let Some(&(_, addr)) = st.recent.iter().find(|&&(i, _)| i == iter) {
            return addr;
        }
        // Advance the walk up to the requested iteration.
        while st.next_iter <= iter {
            let cur = st.addr;
            st.recent.push_back((st.next_iter, cur));
            if st.recent.len() > 256 {
                st.recent.pop_front();
            }
            let nodes = (region_bytes / node_bytes).max(1);
            let next = if st.rng.next_f64() < locality {
                base + ((cur - base) / node_bytes + 1) % nodes * node_bytes
            } else {
                base + st.rng.next_below(nodes) * node_bytes
            };
            st.addr = next;
            st.next_iter += 1;
        }
        st.recent
            .iter()
            .find(|&&(i, _)| i == iter)
            .map(|&(_, a)| a)
            .expect("just produced the requested iteration")
    }

    /// The address reference `memref` touches at source iteration `iter`
    /// of the current entry.
    ///
    /// `lookahead_of` redirects a prefetch stream: pass the *demand*
    /// reference and a distance via [`AddressStreams::address_ahead`]
    /// instead of calling this with a synthetic reference.
    pub fn address(&mut self, memref: MemRefId, iter: u64) -> u64 {
        self.entry_high = self.entry_high.max(iter + 1);
        self.address_inner(memref.index(), iter)
    }

    /// The address `memref` will touch `distance` iterations in the
    /// future — what a software prefetch planted at distance `d` fetches.
    pub fn address_ahead(&mut self, memref: MemRefId, iter: u64, distance: u32) -> u64 {
        self.address_inner(memref.index(), iter + u64::from(distance))
    }

    fn address_inner(&mut self, refidx: usize, iter: u64) -> u64 {
        match self.patterns[refidx].clone() {
            AccessPattern::Affine { base, stride } => {
                let g = match self.mode {
                    StreamMode::Progressive => self.global_iter(iter),
                    StreamMode::Restart => iter,
                };
                (base as i64 + stride * g as i64) as u64
            }
            AccessPattern::SymbolicStride {
                base,
                typical_stride,
            } => {
                let g = match self.mode {
                    StreamMode::Progressive => self.global_iter(iter),
                    StreamMode::Restart => iter,
                };
                (base as i64 + typical_stride * g as i64) as u64
            }
            AccessPattern::Invariant { addr } => addr,
            AccessPattern::Gather {
                base,
                elem_bytes,
                region_bytes,
                ..
            } => {
                let g = match self.mode {
                    StreamMode::Progressive => self.global_iter(iter),
                    StreamMode::Restart => iter,
                };
                let elems = (region_bytes / u64::from(elem_bytes)).max(1);
                let idx = mix(self.seed, refidx as u64, g) % elems;
                base + idx * u64::from(elem_bytes)
            }
            AccessPattern::Deref {
                pointer,
                offset,
                region_bytes,
            } => {
                let chase_field = match &self.patterns[pointer.index()] {
                    AccessPattern::PointerChase { node_bytes, .. } if offset < *node_bytes => {
                        Some(pointer.index())
                    }
                    _ => None,
                };
                if let Some(cidx) = chase_field {
                    // A field on the chased node itself: same line
                    // neighbourhood as the node address.
                    self.chase_node_addr(cidx, iter) + offset
                } else {
                    // A pointer loaded from elsewhere: effectively a random
                    // location in the target region.
                    let g = match self.mode {
                        StreamMode::Progressive => self.global_iter(iter),
                        StreamMode::Restart => iter,
                    };
                    let slots = (region_bytes / 64).max(1);
                    region_base(refidx)
                        + (mix(self.seed, refidx as u64 ^ 0xDEAD, g) % slots) * 64
                        + offset % 64
                }
            }
            AccessPattern::PointerChase { node_bytes, .. } => {
                // The chase load reads the `next` field of the current node.
                self.chase_node_addr(refidx, iter) + node_bytes / 2
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_ir::{DataClass, LoopBuilder};

    fn loop_with_patterns() -> LoopIr {
        let mut b = LoopBuilder::new("pat");
        let a = b.affine_ref("a", DataClass::Int, 0x1000, 8, 8);
        let idx = b.affine_ref("b", DataClass::Int, 0x8000, 4, 4);
        let g = b.gather_ref("a[b[i]]", DataClass::Int, idx, 0x10_0000, 8, 1 << 16);
        let node = b.chase_ref("n", 0x4000_0000, 64, 1 << 20, 0.5);
        let fld = b.deref_ref("n->f", DataClass::Int, node, 8, 1 << 20, 8);
        let far = b.deref_ref("n->arc", DataClass::Int, node, 128, 1 << 22, 8);
        let va = b.load(a);
        let vi = b.load(idx);
        let vg = b.load(g);
        let vn = b.load(node);
        let vf = b.load(fld);
        let vr = b.load(far);
        let s1 = b.add(va, vi);
        let s2 = b.add(vg, vn);
        let s3 = b.add(vf, vr);
        let _ = (s1, s2, s3);
        b.build().unwrap()
    }

    #[test]
    fn affine_walks_by_stride() {
        let lp = loop_with_patterns();
        let mut s = AddressStreams::new(&lp, StreamMode::Progressive, 1);
        assert_eq!(s.address(MemRefId(0), 0), 0x1000);
        assert_eq!(s.address(MemRefId(0), 1), 0x1008);
        assert_eq!(s.address(MemRefId(0), 5), 0x1028);
    }

    #[test]
    fn progressive_mode_continues_across_entries() {
        let lp = loop_with_patterns();
        let mut s = AddressStreams::new(&lp, StreamMode::Progressive, 1);
        s.begin_entry();
        let _ = s.address(MemRefId(0), 9); // 10 iterations worth
        s.begin_entry();
        assert_eq!(s.address(MemRefId(0), 0), 0x1000 + 10 * 8);
    }

    #[test]
    fn restart_mode_replays() {
        let lp = loop_with_patterns();
        let mut s = AddressStreams::new(&lp, StreamMode::Restart, 1);
        s.begin_entry();
        let first = s.address(MemRefId(0), 0);
        let _ = s.address(MemRefId(0), 9);
        s.begin_entry();
        assert_eq!(s.address(MemRefId(0), 0), first);
    }

    #[test]
    fn gather_is_deterministic_and_in_region() {
        let lp = loop_with_patterns();
        let mut s1 = AddressStreams::new(&lp, StreamMode::Progressive, 7);
        let mut s2 = AddressStreams::new(&lp, StreamMode::Progressive, 7);
        for i in 0..100 {
            let a = s1.address(MemRefId(2), i);
            assert_eq!(a, s2.address(MemRefId(2), i));
            assert!((0x10_0000..0x10_0000 + (1 << 16)).contains(&a));
        }
    }

    #[test]
    fn prefetch_lookahead_matches_future_demand() {
        let lp = loop_with_patterns();
        let mut s = AddressStreams::new(&lp, StreamMode::Progressive, 3);
        let ahead = s.address_ahead(MemRefId(2), 10, 5);
        let demand = s.address(MemRefId(2), 15);
        assert_eq!(ahead, demand, "prefetch targets the future address");
    }

    #[test]
    fn chase_field_shares_node_line() {
        let lp = loop_with_patterns();
        let mut s = AddressStreams::new(&lp, StreamMode::Progressive, 3);
        // The chase load and the on-node field at the same iteration
        // differ only by their field offsets.
        let chase = s.address(MemRefId(3), 4);
        let field = s.address(MemRefId(4), 4);
        assert_eq!(chase - 32, field - 8, "same node address");
    }

    #[test]
    fn chase_addresses_stay_in_region() {
        let lp = loop_with_patterns();
        let mut s = AddressStreams::new(&lp, StreamMode::Progressive, 3);
        for i in 0..1000 {
            let a = s.address(MemRefId(3), i);
            assert!((0x4000_0000..0x4000_0000 + (1 << 20) + 64).contains(&a));
        }
    }

    #[test]
    fn chase_tolerates_lagging_stage_reads() {
        let lp = loop_with_patterns();
        let mut s = AddressStreams::new(&lp, StreamMode::Progressive, 3);
        // A later-stage field read asks for an older iteration than the
        // chase has advanced to.
        let _ = s.address(MemRefId(3), 20);
        let old_field = s.address(MemRefId(4), 15);
        let chase_at_15 = s.address(MemRefId(3), 15);
        assert_eq!(chase_at_15 - 32, old_field - 8);
    }

    #[test]
    fn far_deref_is_outside_node_region() {
        let lp = loop_with_patterns();
        let mut s = AddressStreams::new(&lp, StreamMode::Progressive, 3);
        let a = s.address(MemRefId(5), 0);
        assert!(a >= 0x1000_0000_0000, "separate region for far derefs");
    }
}
