//! Cycle-accounting counters (the Fig. 10 buckets plus instrumentation).

use std::ops::{Add, AddAssign};

/// Cycle and event counters for one or more simulated loop executions.
///
/// The six cycle buckets partition `total`:
/// `total = unstalled + be_exe_bubble + be_l1d_fpu_bubble + be_rse_bubble
///  + be_flush_bubble + fe_bubble` — an invariant the test suite checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleCounters {
    /// Total clock cycles.
    pub total: u64,
    /// Cycles doing useful, unstalled work.
    pub unstalled: u64,
    /// Execution-pipeline stalls waiting for register data (stall-on-use;
    /// dominated by memory latency).
    pub be_exe_bubble: u64,
    /// Stalls because the OzQ (L1-to-L2 request queue) was full at issue.
    pub be_l1d_fpu_bubble: u64,
    /// Register-stack-engine spill/fill traffic.
    pub be_rse_bubble: u64,
    /// Pipeline flushes (loop-exit branch mispredict).
    pub be_flush_bubble: u64,
    /// Front-end instruction-delivery bubbles at loop entry.
    pub fe_bubble: u64,

    /// Kernel-loop iterations executed (including prolog/epilog).
    pub kernel_iters: u64,
    /// Source-loop iterations completed.
    pub source_iters: u64,
    /// Loop executions (entries).
    pub entries: u64,
    /// Demand loads issued.
    pub loads: u64,
    /// Demand loads served by L1D.
    pub l1_hits: u64,
    /// Demand loads served by L2.
    pub l2_hits: u64,
    /// Demand loads served by L3.
    pub l3_hits: u64,
    /// Demand loads served by memory.
    pub mem_loads: u64,
    /// Demand loads that merged with an in-flight line fill.
    pub inflight_merges: u64,
    /// Data-TLB misses.
    pub tlb_misses: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// Stores issued.
    pub stores: u64,
    /// Cycles during which the OzQ was full (the paper's
    /// `L2D_OZQ_FULL`-style statistic).
    pub ozq_full_cycles: u64,
}

impl CycleCounters {
    /// Sum of all stall buckets.
    pub fn stall_cycles(&self) -> u64 {
        self.be_exe_bubble
            + self.be_l1d_fpu_bubble
            + self.be_rse_bubble
            + self.be_flush_bubble
            + self.fe_bubble
    }

    /// Checks the bucket-partition invariant.
    pub fn is_consistent(&self) -> bool {
        self.total == self.unstalled + self.stall_cycles()
    }

    /// Fraction of total cycles with a full OzQ.
    pub fn ozq_full_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.ozq_full_cycles as f64 / self.total as f64
        }
    }

    /// Exports every counter into a telemetry metrics registry under
    /// `prefix`: the cycle-bucket partition as `{prefix}.cycles.*`
    /// (`total == unstalled + the five stall buckets`, mirroring
    /// [`CycleCounters::is_consistent`]) and the event counts as
    /// `{prefix}.events.*`. No-op on a disabled sink.
    pub fn export(&self, tel: &ltsp_telemetry::Telemetry, prefix: &str) {
        if !tel.is_enabled() {
            return;
        }
        let cycles = [
            ("total", self.total),
            ("unstalled", self.unstalled),
            ("be_exe_bubble", self.be_exe_bubble),
            ("be_l1d_fpu_bubble", self.be_l1d_fpu_bubble),
            ("be_rse_bubble", self.be_rse_bubble),
            ("be_flush_bubble", self.be_flush_bubble),
            ("fe_bubble", self.fe_bubble),
            ("ozq_full", self.ozq_full_cycles),
        ];
        for (name, v) in cycles {
            tel.counter_add(&format!("{prefix}.cycles.{name}"), v);
        }
        let events = [
            ("kernel_iters", self.kernel_iters),
            ("source_iters", self.source_iters),
            ("entries", self.entries),
            ("loads", self.loads),
            ("l1_hits", self.l1_hits),
            ("l2_hits", self.l2_hits),
            ("l3_hits", self.l3_hits),
            ("mem_loads", self.mem_loads),
            ("inflight_merges", self.inflight_merges),
            ("tlb_misses", self.tlb_misses),
            ("prefetches", self.prefetches),
            ("stores", self.stores),
        ];
        for (name, v) in events {
            tel.counter_add(&format!("{prefix}.events.{name}"), v);
        }
    }

    /// Scales every cycle and event count by a weight (used when a loop
    /// stands for a share of a whole benchmark's execution).
    pub fn scaled(&self, weight: f64) -> CycleCounters {
        let s = |v: u64| -> u64 { (v as f64 * weight).round() as u64 };
        CycleCounters {
            total: s(self.total),
            unstalled: s(self.unstalled),
            be_exe_bubble: s(self.be_exe_bubble),
            be_l1d_fpu_bubble: s(self.be_l1d_fpu_bubble),
            be_rse_bubble: s(self.be_rse_bubble),
            be_flush_bubble: s(self.be_flush_bubble),
            fe_bubble: s(self.fe_bubble),
            kernel_iters: s(self.kernel_iters),
            source_iters: s(self.source_iters),
            entries: s(self.entries),
            loads: s(self.loads),
            l1_hits: s(self.l1_hits),
            l2_hits: s(self.l2_hits),
            l3_hits: s(self.l3_hits),
            mem_loads: s(self.mem_loads),
            inflight_merges: s(self.inflight_merges),
            tlb_misses: s(self.tlb_misses),
            prefetches: s(self.prefetches),
            stores: s(self.stores),
            ozq_full_cycles: s(self.ozq_full_cycles),
        }
    }
}

impl Add for CycleCounters {
    type Output = CycleCounters;

    fn add(mut self, rhs: CycleCounters) -> CycleCounters {
        self += rhs;
        self
    }
}

impl AddAssign for CycleCounters {
    fn add_assign(&mut self, r: CycleCounters) {
        self.total += r.total;
        self.unstalled += r.unstalled;
        self.be_exe_bubble += r.be_exe_bubble;
        self.be_l1d_fpu_bubble += r.be_l1d_fpu_bubble;
        self.be_rse_bubble += r.be_rse_bubble;
        self.be_flush_bubble += r.be_flush_bubble;
        self.fe_bubble += r.fe_bubble;
        self.kernel_iters += r.kernel_iters;
        self.source_iters += r.source_iters;
        self.entries += r.entries;
        self.loads += r.loads;
        self.l1_hits += r.l1_hits;
        self.l2_hits += r.l2_hits;
        self.l3_hits += r.l3_hits;
        self.mem_loads += r.mem_loads;
        self.inflight_merges += r.inflight_merges;
        self.tlb_misses += r.tlb_misses;
        self.prefetches += r.prefetches;
        self.stores += r.stores;
        self.ozq_full_cycles += r.ozq_full_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_accumulates() {
        let a = CycleCounters {
            total: 10,
            unstalled: 6,
            be_exe_bubble: 4,
            loads: 3,
            ..Default::default()
        };
        let b = CycleCounters {
            total: 5,
            unstalled: 5,
            loads: 1,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.total, 15);
        assert_eq!(c.unstalled, 11);
        assert_eq!(c.loads, 4);
        assert!(c.is_consistent());
    }

    #[test]
    fn consistency_check_detects_mismatch() {
        let bad = CycleCounters {
            total: 10,
            unstalled: 5,
            be_exe_bubble: 1,
            ..Default::default()
        };
        assert!(!bad.is_consistent());
    }

    #[test]
    fn scaling_is_proportional() {
        let a = CycleCounters {
            total: 1000,
            unstalled: 600,
            be_exe_bubble: 400,
            loads: 100,
            ..Default::default()
        };
        let half = a.scaled(0.5);
        assert_eq!(half.total, 500);
        assert_eq!(half.loads, 50);
    }

    #[test]
    fn ozq_fraction() {
        let a = CycleCounters {
            total: 200,
            ozq_full_cycles: 20,
            ..Default::default()
        };
        assert!((a.ozq_full_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(CycleCounters::default().ozq_full_fraction(), 0.0);
    }
}
