//! The in-order, stall-on-use executor for kernel schedules.

use std::collections::{HashMap, VecDeque};

use ltsp_ir::{DataClass, LoopIr, MemRefId, Opcode, VReg};
use ltsp_machine::MachineModel;
use ltsp_pipeliner::ModuloSchedule;

use crate::cache::MemorySystem;
use crate::counters::CycleCounters;
use crate::ozq::Ozq;
use crate::streams::{AddressStreams, StreamMode};

/// Fixed-cost knobs of the execution model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorConfig {
    /// Seed for the deterministic address streams.
    pub seed: u64,
    /// Whether streams replay or progress across loop entries.
    pub stream_mode: StreamMode,
    /// Front-end bubble charged once per loop entry.
    pub fe_entry_bubble: u32,
    /// Flush bubble charged at loop exit (branch mispredict).
    pub flush_exit_bubble: u32,
    /// RSE traffic: one bubble cycle per `rse_regs_per_cycle` registers the
    /// loop allocates, charged per entry (register stack spill/fill).
    pub rse_regs_per_cycle: u32,
    /// Probability that a compare (`cmp`/`fcmp`/`tbit`) produces a true
    /// predicate in a given iteration; drives predicated (if-converted)
    /// instructions. Deterministic per (instruction, iteration).
    pub cmp_taken_prob: f64,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            seed: 0x1517_CAFE,
            stream_mode: StreamMode::Progressive,
            fe_entry_bubble: 2,
            flush_exit_bubble: 6,
            rse_regs_per_cycle: 4,
            cmp_taken_prob: 0.5,
        }
    }
}

/// Precomputed per-instruction execution recipe.
#[derive(Debug, Clone)]
struct ExecInst {
    id: u32,
    stage: u32,
    op: Opcode,
    dst: Option<VReg>,
    srcs: Vec<(VReg, u32, bool)>, // (reg, omega, has_def_in_loop)
    mem: Option<MemRefId>,
    latency: u32, // non-load result latency
    /// Qualifying predicate: (register, omega, negated).
    qp: Option<(VReg, u32, bool)>,
}

/// Executes a pipelined (or acyclic-fallback) loop schedule against the
/// simulated memory system, accumulating [`CycleCounters`].
///
/// Cache, TLB and OzQ state persist across [`Executor::run_entry`] calls,
/// modelling repeated executions of the same loop within a benchmark.
///
/// # Example
///
/// ```
/// use ltsp_ir::{DataClass, LoopBuilder};
/// use ltsp_machine::MachineModel;
/// use ltsp_memsim::{Executor, ExecutorConfig};
/// use ltsp_pipeliner::{pipeline_loop, PipelineOptions};
///
/// let mut b = LoopBuilder::new("ex");
/// let a = b.affine_ref("a[i]", DataClass::Int, 0x1000, 4, 4);
/// let v = b.load(a);
/// let _ = b.add_reduce(v);
/// let lp = b.build()?;
/// let m = MachineModel::itanium2();
/// let p = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()).unwrap();
///
/// let mut ex = Executor::new(&lp, &p.schedule, &m, 8, ExecutorConfig::default());
/// ex.run_entry(100);
/// let c = ex.counters();
/// assert_eq!(c.source_iters, 100);
/// assert!(c.is_consistent());
/// # Ok::<(), ltsp_ir::IrError>(())
/// ```
/// Where one memory reference's demand loads were actually served from —
/// the per-load observation record the adaptive-hint loop feeds back into
/// the compiler. The access/latency/level counts are demand accesses;
/// software prefetches are tallied separately (`prefetches`, and how many
/// were redundant). `merged` accesses piggy-backed on an in-flight miss
/// and are excluded from the per-level counts, exactly as in
/// [`CycleCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefObservation {
    /// Demand accesses issued through this reference.
    pub accesses: u64,
    /// Sum of observed latencies (cycles) across those accesses.
    pub latency_sum: u64,
    /// Accesses served by the L1D.
    pub l1: u64,
    /// Accesses served by the L2.
    pub l2: u64,
    /// Accesses served by the L3.
    pub l3: u64,
    /// Accesses served by memory.
    pub mem: u64,
    /// Accesses merged into an already-in-flight miss.
    pub merged: u64,
    /// Software prefetches issued for this reference.
    pub prefetches: u64,
    /// Prefetches that found the line already cache-resident (in the L2
    /// or closer, or covered by an in-flight fill about to land) — the
    /// prefetch was pure issue-slot cost.
    pub redundant_prefetches: u64,
}

impl RefObservation {
    /// Mean observed latency in cycles, or `None` with no accesses.
    pub fn avg_latency(&self) -> Option<f64> {
        (self.accesses > 0).then(|| self.latency_sum as f64 / self.accesses as f64)
    }
}

#[derive(Debug)]
pub struct Executor<'a> {
    lp: &'a LoopIr,
    machine: &'a MachineModel,
    /// One `(rows, stage_count, regs_allocated)` per kernel version
    /// (trip-count versioning keeps a base and a boosted kernel for the
    /// same loop body, each with its own register frame).
    versions: Vec<(Vec<Vec<ExecInst>>, u32, u32)>,
    mem: MemorySystem,
    ozq: Ozq,
    streams: AddressStreams,
    counters: CycleCounters,
    now: u64,
    /// Per-register ready times for recent source iterations.
    ready: HashMap<VReg, VecDeque<(i64, u64)>>,
    /// Predicate values for recent source iterations.
    pred_vals: HashMap<VReg, VecDeque<(i64, bool)>>,
    cfg: ExecutorConfig,
    /// Per-memref demand-load statistics: (accesses, total latency).
    ref_stats: Vec<(u64, u64)>,
    /// Per-memref observed service levels (the adaptive-hint feedback
    /// signal); updated in lockstep with `ref_stats`.
    ref_obs: Vec<RefObservation>,
    /// Observational telemetry sink; disabled by default. The simulation
    /// never reads it, so cycle counts are bit-identical either way.
    telemetry: ltsp_telemetry::Telemetry,
}

impl<'a> Executor<'a> {
    /// Builds an executor for one compiled loop.
    ///
    /// `regs_allocated` is the total register count the register allocator
    /// assigned (rotating + static across classes); it drives the
    /// register-stack-engine cost model.
    pub fn new(
        lp: &'a LoopIr,
        sched: &ModuloSchedule,
        machine: &'a MachineModel,
        regs_allocated: u32,
        cfg: ExecutorConfig,
    ) -> Self {
        Self::new_versioned(
            lp,
            std::slice::from_ref(sched),
            machine,
            std::slice::from_ref(&regs_allocated),
            cfg,
        )
    }

    /// Builds an executor holding several alternative kernels for the same
    /// loop body (trip-count versioning, the paper's Sec. 6 outlook): all
    /// versions share the memory system, scoreboard and address streams;
    /// [`Executor::run_entry_version`] picks the kernel per entry.
    ///
    /// `regs_per_version` gives each version's allocated register count
    /// (versions carry their own register frames, so RSE traffic is
    /// charged per the version actually run).
    ///
    /// # Panics
    ///
    /// Panics if `scheds` is empty or the lengths differ.
    pub fn new_versioned(
        lp: &'a LoopIr,
        scheds: &[ModuloSchedule],
        machine: &'a MachineModel,
        regs_per_version: &[u32],
        cfg: ExecutorConfig,
    ) -> Self {
        assert!(!scheds.is_empty(), "at least one kernel version required");
        assert_eq!(
            scheds.len(),
            regs_per_version.len(),
            "one register count per kernel version"
        );
        let defined: std::collections::HashSet<VReg> =
            lp.insts().iter().filter_map(|i| i.dst()).collect();
        let build_rows = |sched: &ModuloSchedule| -> Vec<Vec<ExecInst>> {
            sched
                .rows()
                .into_iter()
                .map(|row| {
                    row.into_iter()
                        .map(|slot| {
                            let inst = lp.inst(slot.inst);
                            ExecInst {
                                id: slot.inst.0,
                                stage: slot.stage,
                                op: inst.op(),
                                dst: inst.dst(),
                                srcs: inst
                                    .reads()
                                    .map(|s| (s.reg, s.omega, defined.contains(&s.reg)))
                                    .collect(),
                                mem: inst.mem(),
                                latency: match inst.op() {
                                    Opcode::Load(_) => 0,
                                    op => machine.latencies().op_latency(op),
                                },
                                qp: inst.qp().map(|(q, neg)| (q.reg, q.omega, neg)),
                            }
                        })
                        .collect()
                })
                .collect()
        };
        let versions = scheds
            .iter()
            .zip(regs_per_version)
            .map(|(s, &regs)| (build_rows(s), s.stage_count(), regs))
            .collect();
        let n_refs = lp.memrefs().len();
        Executor {
            lp,
            machine,
            versions,
            mem: MemorySystem::new(*machine.caches()),
            ozq: Ozq::new(machine.caches().ozq_capacity),
            streams: AddressStreams::new(lp, cfg.stream_mode, cfg.seed),
            counters: CycleCounters::default(),
            now: 0,
            ready: HashMap::new(),
            pred_vals: HashMap::new(),
            cfg,
            ref_stats: vec![(0, 0); n_refs],
            ref_obs: vec![RefObservation::default(); n_refs],
            telemetry: ltsp_telemetry::Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry sink: each entry records its cycle cost into
    /// the `"{sim}.entry_cycles"` histogram, and [`Executor::export_metrics`]
    /// pushes the final counters. Purely observational — attaching (or
    /// not) never changes simulation results.
    pub fn attach_telemetry(&mut self, tel: &ltsp_telemetry::Telemetry) {
        self.telemetry = tel.clone();
    }

    /// Exports the accumulated [`CycleCounters`] into the attached
    /// telemetry sink's metrics registry under `prefix` (e.g.
    /// `"sim.cycles.total"`, the five stall buckets, and the event
    /// counters — see [`CycleCounters::export`]).
    pub fn export_metrics(&self, prefix: &str) {
        self.counters.export(&self.telemetry, prefix);
    }

    /// Per-memref demand statistics `(accesses, total latency cycles)` —
    /// the "dynamic cache-miss sampling" data of the paper's outlook
    /// (Sec. 6). Indexed by memref id.
    pub fn ref_stats(&self) -> &[(u64, u64)] {
        &self.ref_stats
    }

    /// Clears the per-memref statistics (e.g. to discard cache-warmup
    /// entries before sampling steady-state behaviour).
    pub fn reset_ref_stats(&mut self) {
        for s in &mut self.ref_stats {
            *s = (0, 0);
        }
        for o in &mut self.ref_obs {
            *o = RefObservation::default();
        }
    }

    /// Per-memref service-level observations (which cache level each
    /// demand load was actually served from, plus latency sums) — the
    /// feedback signal of the adaptive-hint loop. Indexed by memref id;
    /// cleared together with [`Executor::reset_ref_stats`].
    pub fn observations(&self) -> &[RefObservation] {
        &self.ref_obs
    }

    /// The counters accumulated so far.
    pub fn counters(&self) -> &CycleCounters {
        &self.counters
    }

    /// Resets memory-system state (not the counters); used between
    /// independent experiment arms.
    pub fn reset_memory(&mut self) {
        self.mem.clear();
        self.ozq.clear();
        self.ready.clear();
        self.pred_vals.clear();
    }

    fn record_ready(&mut self, reg: VReg, src_iter: i64, time: u64) {
        let q = self.ready.entry(reg).or_default();
        q.push_back((src_iter, time));
        if q.len() > 300 {
            q.pop_front();
        }
    }

    fn record_pred(&mut self, reg: VReg, src_iter: i64, value: bool) {
        let q = self.pred_vals.entry(reg).or_default();
        q.push_back((src_iter, value));
        if q.len() > 300 {
            q.pop_front();
        }
    }

    /// The predicate value for a source iteration; defaults to `true`
    /// (pre-loop state, or aged out of the window).
    fn pred_value(&self, reg: VReg, src_iter: i64) -> bool {
        if src_iter < 0 {
            return true;
        }
        self.pred_vals
            .get(&reg)
            .and_then(|q| q.iter().rev().find(|&&(i, _)| i == src_iter))
            .is_none_or(|&(_, v)| v)
    }

    fn ready_time(&self, reg: VReg, src_iter: i64) -> u64 {
        if src_iter < 0 {
            return 0; // initialized before the loop
        }
        match self.ready.get(&reg) {
            Some(q) => q
                .iter()
                .rev()
                .find(|&&(i, _)| i == src_iter)
                .map_or(0, |&(_, t)| t),
            None => 0,
        }
    }

    /// Runs one execution (entry) of the loop with the given trip count.
    ///
    /// # Panics
    ///
    /// Panics if `trip == 0`.
    pub fn run_entry(&mut self, trip: u64) {
        self.run_entry_version(0, trip);
    }

    /// Runs one entry on kernel version `version` (see
    /// [`Executor::new_versioned`]).
    ///
    /// # Panics
    ///
    /// Panics if `trip == 0` or `version` is out of range.
    pub fn run_entry_version(&mut self, version: usize, trip: u64) {
        assert!(trip > 0, "trip count must be positive");
        let start = self.now;
        self.counters.entries += 1;
        self.streams.begin_entry();

        // Entry fixed costs: front-end delivery and RSE traffic for the
        // registers this loop allocates.
        let fe = u64::from(self.cfg.fe_entry_bubble);
        self.counters.fe_bubble += fe;
        self.now += fe;
        let rse = u64::from(self.versions[version].2 / self.cfg.rse_regs_per_cycle.max(1));
        self.counters.be_rse_bubble += rse;
        self.now += rse;

        let stages = self.versions[version].1;
        let kernel_iters = trip + u64::from(stages) - 1;
        self.counters.kernel_iters += kernel_iters;
        self.counters.source_iters += trip;

        let mut last_sample = self.now;
        let n_rows = self.versions[version].0.len();
        for k in 0..kernel_iters {
            for row_idx in 0..n_rows {
                self.run_cycle(version, k, row_idx, trip);
                // The kernel cycle itself.
                self.now += 1;
                self.counters.unstalled += 1;
                // OzQ-full accounting: if the queue is full now, the whole
                // window since the last sample ran at capacity (stalls
                // included).
                if self.ozq.is_full_at(self.now) {
                    self.counters.ozq_full_cycles += self.now - last_sample;
                }
                last_sample = self.now;
            }
        }

        // Loop-exit mispredict flush.
        let flush = u64::from(self.cfg.flush_exit_bubble);
        self.counters.be_flush_bubble += flush;
        self.now += flush;

        self.counters.total += self.now - start;
        debug_assert!(self.counters.is_consistent(), "cycle buckets must sum");
        if self.telemetry.is_enabled() {
            self.telemetry
                .histogram_record("sim.entry_cycles", self.now - start);
        }
    }

    fn run_cycle(&mut self, version: usize, k: u64, row_idx: usize, trip: u64) {
        // Which slots are active this kernel iteration (stage predicates)?
        let row = &self.versions[version].0[row_idx];
        let mut active: Vec<usize> = Vec::with_capacity(row.len());
        for (idx, ei) in row.iter().enumerate() {
            let src_iter = k as i64 - i64::from(ei.stage);
            if src_iter >= 0 && (src_iter as u64) < trip {
                active.push(idx);
            }
        }
        if active.is_empty() {
            return;
        }

        // Stall-on-use: the issue group waits for every active source.
        let mut ready_max = self.now;
        for &idx in &active {
            let ei = &self.versions[version].0[row_idx][idx];
            let i = k as i64 - i64::from(ei.stage);
            for &(reg, omega, has_def) in &ei.srcs {
                if !has_def {
                    continue; // loop-invariant live-in
                }
                let t = self.ready_time(reg, i - i64::from(omega));
                ready_max = ready_max.max(t);
            }
        }
        if ready_max > self.now {
            self.counters.be_exe_bubble += ready_max - self.now;
            self.now = ready_max;
        }

        // Execute the group's effects.
        for &idx in &active {
            let ei = self.versions[version].0[row_idx][idx].clone();
            let i = (k as i64 - i64::from(ei.stage)) as u64;
            // Qualifying predicate: a false predicate squashes the
            // instruction (no memory access, no new value) — the
            // if-converted "other path" executes instead.
            if let Some((qreg, omega, neg)) = ei.qp {
                let v = self.pred_value(qreg, i as i64 - i64::from(omega));
                if v == neg {
                    if let Some(dst) = ei.dst {
                        // The architectural register keeps a value the
                        // complementary path produced; it is ready now.
                        self.record_ready(dst, i as i64, self.now);
                    }
                    continue;
                }
            }
            // Compares produce predicate values (deterministic Bernoulli
            // per instruction and iteration).
            if matches!(ei.op, Opcode::Cmp | Opcode::Fcmp | Opcode::Tbit) {
                if let Some(dst) = ei.dst {
                    // Distinct draw per (instruction, entry, iteration):
                    // low-trip loops re-enter many times, and each entry's
                    // nodes must flip independently.
                    let mut h = ltsp_ir::SplitMix64::new(
                        self.cfg.seed
                            ^ (u64::from(ei.id) << 48)
                            ^ (self.counters.entries << 16)
                            ^ i,
                    );
                    let taken = h.next_f64() < self.cfg.cmp_taken_prob;
                    self.record_pred(dst, i as i64, taken);
                }
            }
            match ei.op {
                Opcode::Load(dc) => {
                    let m = ei.mem.expect("loads carry a memref");
                    let addr = self.streams.address(m, i);
                    self.issue_memory(ei.dst, dc, addr, false, i as i64, m);
                }
                Opcode::Store(dc) => {
                    let m = ei.mem.expect("stores carry a memref");
                    let addr = self.streams.address(m, i);
                    self.counters.stores += 1;
                    self.issue_store(dc, addr);
                }
                Opcode::Prefetch(target) => {
                    let m = ei.mem.expect("prefetches carry a memref");
                    let distance = self.lp.memref(m).prefetch().map_or(0, |p| p.distance);
                    let addr = self.streams.address_ahead(m, i, distance);
                    self.counters.prefetches += 1;
                    self.issue_prefetch(addr, target, m);
                }
                _ => {
                    if let Some(dst) = ei.dst {
                        self.record_ready(dst, i as i64, self.now + u64::from(ei.latency));
                    }
                }
            }
        }
    }

    fn ozq_admit(&mut self) {
        // If the OzQ is full at issue time, the pipeline stalls until an
        // entry retires (BE_L1D_FPU_BUBBLE).
        let issue = self.ozq.wait_for_slot(self.now);
        if issue > self.now {
            self.counters.be_l1d_fpu_bubble += issue - self.now;
            self.now = issue;
        }
    }

    fn issue_memory(
        &mut self,
        dst: Option<VReg>,
        dc: DataClass,
        addr: u64,
        is_store: bool,
        src_iter: i64,
        memref: MemRefId,
    ) {
        self.ozq_admit();
        let outcome = self.mem.demand_access(addr, dc, self.now, is_store);
        self.counters.loads += 1;
        let stat = &mut self.ref_stats[memref.index()];
        stat.0 += 1;
        stat.1 += u64::from(outcome.latency);
        let obs = &mut self.ref_obs[memref.index()];
        obs.accesses += 1;
        obs.latency_sum += u64::from(outcome.latency);
        if outcome.tlb_miss {
            self.counters.tlb_misses += 1;
        }
        if outcome.merged {
            self.counters.inflight_merges += 1;
            obs.merged += 1;
        } else {
            match outcome.level {
                ltsp_ir::CacheLevel::L1 => {
                    self.counters.l1_hits += 1;
                    obs.l1 += 1;
                }
                ltsp_ir::CacheLevel::L2 => {
                    self.counters.l2_hits += 1;
                    obs.l2 += 1;
                }
                ltsp_ir::CacheLevel::L3 => {
                    self.counters.l3_hits += 1;
                    obs.l3 += 1;
                }
                ltsp_ir::CacheLevel::Memory => {
                    self.counters.mem_loads += 1;
                    obs.mem += 1;
                }
            }
        }
        let extra = match dc {
            DataClass::Int => 0,
            DataClass::Fp => self.machine.latencies().fp_load_extra,
        };
        let done = self.now + u64::from(outcome.latency + extra);
        self.ozq.push_completion(done);
        if let Some(d) = dst {
            self.record_ready(d, src_iter, done);
        }
    }

    fn issue_store(&mut self, dc: DataClass, addr: u64) {
        self.ozq_admit();
        let outcome = self.mem.demand_access(addr, dc, self.now, true);
        if outcome.tlb_miss {
            self.counters.tlb_misses += 1;
        }
        // Stores drain asynchronously; they hold an OzQ entry for the L2
        // write latency (or the miss fill if deeper).
        let hold = outcome.latency.max(self.machine.caches().l2.best_latency);
        self.ozq.push_completion(self.now + u64::from(hold));
    }

    fn issue_prefetch(&mut self, addr: u64, target: ltsp_ir::CacheLevel, memref: MemRefId) {
        self.ozq_admit();
        let out = self.mem.prefetch(addr, target, self.now);
        let obs = &mut self.ref_obs[memref.index()];
        obs.prefetches += 1;
        if out.redundant {
            obs.redundant_prefetches += 1;
        }
        self.ozq.push_completion(self.now + u64::from(out.latency));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_ir::{DataClass, LoopBuilder};
    use ltsp_pipeliner::{pipeline_loop, PipelineOptions};

    fn compile(
        lp: &LoopIr,
        m: &MachineModel,
        hint: Option<ltsp_ir::LatencyHint>,
    ) -> ModuloSchedule {
        pipeline_loop(lp, m, &move |_| hint, &PipelineOptions::default())
            .unwrap()
            .schedule
    }

    fn streaming_loop(stride: i64) -> LoopIr {
        let mut b = LoopBuilder::new("stream");
        let s = b.affine_ref("s", DataClass::Int, 0x10_0000, stride, 4);
        let d = b.affine_ref("d", DataClass::Int, 0x4000_0000, stride, 4);
        let c = b.live_in_gr("c");
        let v = b.load(s);
        let sum = b.add(v, c);
        b.store(d, sum);
        b.build().unwrap()
    }

    #[test]
    fn counters_partition_total() {
        let m = MachineModel::itanium2();
        let lp = streaming_loop(4);
        let sched = compile(&lp, &m, None);
        let mut ex = Executor::new(&lp, &sched, &m, 10, ExecutorConfig::default());
        ex.run_entry(1000);
        let c = ex.counters();
        assert!(c.is_consistent(), "{c:?}");
        assert_eq!(c.source_iters, 1000);
        assert!(c.total > 1000, "at least one cycle per iteration");
    }

    #[test]
    fn telemetry_is_observational_and_exports_partition() {
        let m = MachineModel::itanium2();
        let lp = streaming_loop(64);
        let sched = compile(&lp, &m, Some(ltsp_ir::LatencyHint::L3));

        // Identical runs, telemetry off vs on: counters are bit-identical
        // because the sink only observes.
        let mut plain = Executor::new(&lp, &sched, &m, 10, ExecutorConfig::default());
        plain.run_entry(2000);

        let tel = ltsp_telemetry::Telemetry::enabled();
        let mut traced = Executor::new(&lp, &sched, &m, 10, ExecutorConfig::default());
        traced.attach_telemetry(&tel);
        traced.run_entry(2000);
        traced.export_metrics("sim");

        assert_eq!(*plain.counters(), *traced.counters());

        // The exported snapshot preserves the bucket-partition invariant.
        let metrics = tel.metrics();
        let total = metrics.counter("sim.cycles.total");
        let stalls = metrics.counter("sim.cycles.be_exe_bubble")
            + metrics.counter("sim.cycles.be_l1d_fpu_bubble")
            + metrics.counter("sim.cycles.be_rse_bubble")
            + metrics.counter("sim.cycles.be_flush_bubble")
            + metrics.counter("sim.cycles.fe_bubble");
        assert_eq!(total, metrics.counter("sim.cycles.unstalled") + stalls);
        assert_eq!(total, traced.counters().total);
        // Each entry recorded its cycle cost.
        let h = metrics.histogram("sim.entry_cycles").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, total);
    }

    #[test]
    fn warm_restart_loop_runs_near_ii() {
        // Restart mode with a small footprint: after the first entry all
        // lines are L1-resident and the loop runs near 1 cycle/iter.
        let m = MachineModel::itanium2();
        let lp = streaming_loop(4);
        let sched = compile(&lp, &m, None);
        let cfg = ExecutorConfig {
            stream_mode: StreamMode::Restart,
            ..ExecutorConfig::default()
        };
        let mut ex = Executor::new(&lp, &sched, &m, 10, cfg);
        ex.run_entry(512); // warms 2KB of source data
        let before = *ex.counters();
        ex.run_entry(512);
        let after = *ex.counters();
        let delta_total = after.total - before.total;
        let delta_stall = after.be_exe_bubble - before.be_exe_bubble;
        assert!(
            delta_total < 512 * 3,
            "warm loop too slow: {delta_total} cycles for 512 iters"
        );
        assert!(delta_stall < delta_total / 4, "few data stalls when warm");
    }

    #[test]
    fn missing_loads_cause_exe_bubbles() {
        // Large stride: every access a fresh line from memory.
        let m = MachineModel::itanium2();
        let lp = streaming_loop(256);
        let sched = compile(&lp, &m, None);
        let mut ex = Executor::new(&lp, &sched, &m, 10, ExecutorConfig::default());
        ex.run_entry(200);
        let c = ex.counters();
        assert!(
            c.be_exe_bubble > c.total / 2,
            "memory-bound loop should be stall-dominated: {c:?}"
        );
        assert!(c.mem_loads > 150);
    }

    #[test]
    fn boosted_schedule_reduces_stalls_on_missing_loads() {
        // The paper's core claim, end to end: same loop, same misses,
        // higher scheduled latency -> fewer stall cycles.
        let m = MachineModel::itanium2();
        let lp = streaming_loop(256);
        let base = compile(&lp, &m, None);
        let boosted = compile(&lp, &m, Some(ltsp_ir::LatencyHint::L3));
        assert!(boosted.stage_count() > base.stage_count());

        let mut ex_base = Executor::new(&lp, &base, &m, 10, ExecutorConfig::default());
        ex_base.run_entry(2000);
        let mut ex_boost = Executor::new(&lp, &boosted, &m, 14, ExecutorConfig::default());
        ex_boost.run_entry(2000);

        let cb = ex_base.counters();
        let cx = ex_boost.counters();
        assert!(
            cx.total < cb.total,
            "boosted must be faster on missing loads: base={} boosted={}",
            cb.total,
            cx.total
        );
        assert!(cx.be_exe_bubble < cb.be_exe_bubble);
    }

    #[test]
    fn low_trip_count_pays_for_extra_stages() {
        // L1-warm data + trip count 4: the boosted pipeline's extra
        // prolog/epilog iterations are pure overhead (the h264ref case).
        let m = MachineModel::itanium2();
        let lp = streaming_loop(4);
        let base = compile(&lp, &m, None);
        let boosted = compile(&lp, &m, Some(ltsp_ir::LatencyHint::L3));

        let cfg = ExecutorConfig {
            stream_mode: StreamMode::Restart,
            ..ExecutorConfig::default()
        };
        let mut ex_base = Executor::new(&lp, &base, &m, 10, cfg);
        let mut ex_boost = Executor::new(&lp, &boosted, &m, 14, cfg);
        for _ in 0..200 {
            ex_base.run_entry(4);
            ex_boost.run_entry(4);
        }
        assert!(
            ex_boost.counters().total > ex_base.counters().total,
            "boost must hurt low-trip warm loops: base={} boosted={}",
            ex_base.counters().total,
            ex_boost.counters().total
        );
    }

    #[test]
    #[should_panic(expected = "trip count must be positive")]
    fn zero_trip_panics() {
        let m = MachineModel::itanium2();
        let lp = streaming_loop(4);
        let sched = compile(&lp, &m, None);
        let mut ex = Executor::new(&lp, &sched, &m, 10, ExecutorConfig::default());
        ex.run_entry(0);
    }
}
