//! The OzQ: the bounded queue of outstanding memory requests.

/// Models the out-of-order memory-request queue between L1 and L2 on the
/// Itanium 2 ("at least 48 outstanding requests can be active throughout
/// the memory hierarchy without stalling the execution pipeline", paper
/// Sec. 2). Every load, store and prefetch allocates an entry at issue and
/// frees it when the request completes; if the queue is full at issue, the
/// pipeline stalls until an entry retires — the `BE_L1D_FPU_BUBBLE`
/// component of Fig. 10.
#[derive(Debug, Clone)]
pub struct Ozq {
    capacity: usize,
    /// Completion times of outstanding requests (unsorted; small).
    outstanding: Vec<u64>,
}

impl Ozq {
    /// Creates an empty queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "OzQ capacity must be positive");
        Ozq {
            capacity: capacity as usize,
            outstanding: Vec::new(),
        }
    }

    /// Retires entries that complete at or before `now`.
    pub fn drain(&mut self, now: u64) {
        self.outstanding.retain(|&t| t > now);
    }

    /// Current occupancy after draining.
    pub fn occupancy(&self) -> usize {
        self.outstanding.len()
    }

    /// True when no request could be accepted at `now`.
    pub fn is_full_at(&mut self, now: u64) -> bool {
        self.drain(now);
        self.outstanding.len() >= self.capacity
    }

    /// Allocates an entry for a request issued at `now` completing at
    /// `completion`. Returns the (possibly delayed) issue time: if the
    /// queue is full, issue waits for the earliest retirement.
    pub fn allocate(&mut self, now: u64, completion_latency: u32) -> u64 {
        self.drain(now);
        let mut issue = now;
        if self.outstanding.len() >= self.capacity {
            let earliest = self
                .outstanding
                .iter()
                .copied()
                .min()
                .expect("full queue is non-empty");
            issue = issue.max(earliest);
            self.drain(issue);
        }
        self.outstanding.push(issue + u64::from(completion_latency));
        issue
    }

    /// Waits (logically) until a slot is free at or after `now`, returning
    /// the cycle at which issue can proceed. Does not allocate.
    pub fn wait_for_slot(&mut self, now: u64) -> u64 {
        self.drain(now);
        if self.outstanding.len() < self.capacity {
            return now;
        }
        let earliest = self
            .outstanding
            .iter()
            .copied()
            .min()
            .expect("full queue is non-empty");
        self.drain(earliest);
        earliest
    }

    /// Records an outstanding request completing at `completion`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the queue is already at capacity — call
    /// [`Ozq::wait_for_slot`] first.
    pub fn push_completion(&mut self, completion: u64) {
        debug_assert!(
            self.outstanding.len() < self.capacity,
            "OzQ overflow: wait_for_slot before pushing"
        );
        self.outstanding.push(completion);
    }

    /// Empties the queue.
    pub fn clear(&mut self) {
        self.outstanding.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_stalls_until_retirement() {
        let mut q = Ozq::new(2);
        assert_eq!(q.allocate(0, 100), 0);
        assert_eq!(q.allocate(1, 50), 1);
        assert!(q.is_full_at(2));
        // Third request at t=2 must wait for the t=51 retirement.
        assert_eq!(q.allocate(2, 10), 51);
        assert_eq!(q.occupancy(), 2);
    }

    #[test]
    fn drain_retires_completed() {
        let mut q = Ozq::new(4);
        q.allocate(0, 10);
        q.allocate(0, 20);
        q.drain(15);
        assert_eq!(q.occupancy(), 1);
        q.drain(25);
        assert_eq!(q.occupancy(), 0);
    }

    #[test]
    fn no_stall_when_space() {
        let mut q = Ozq::new(48);
        for i in 0..48 {
            assert_eq!(q.allocate(i, 1000), i);
        }
        assert!(q.is_full_at(48));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Ozq::new(0);
    }
}
