//! Cycle-approximate execution simulation of pipelined loops on an
//! Itanium-2-like in-order core.
//!
//! The reproduced paper measures its gains on real hardware with cycle
//! accounting (HP Caliper, Fig. 10). This crate supplies the equivalent
//! substrate: it executes a kernel schedule produced by
//! [`ltsp_pipeliner`] against a set-associative L1D/L2/L3 hierarchy with a
//! bounded out-of-order memory-request queue (OzQ), a small data TLB, and
//! an in-order, stall-on-use scoreboard, and reports cycles in the same
//! buckets the paper charts:
//!
//! - `BE_EXE_BUBBLE` — stalls because data (usually from memory) was not
//!   yet available at use;
//! - `BE_L1D_FPU_BUBBLE` — stalls because the OzQ was full at issue;
//! - `BE_RSE_BUBBLE` — register stack engine traffic from the registers a
//!   loop allocates;
//! - `BE_FLUSH_BUBBLE` — the loop-exit branch mispredict;
//! - `BACK_END_BUBBLE.FE` — front-end delivery at loop entry;
//! - unstalled execution.
//!
//! Address behaviour per memory reference comes from the IR's
//! [`ltsp_ir::AccessPattern`]; streams are deterministic from a seed.

mod cache;
mod counters;
mod exec;
mod ozq;
mod streams;

pub use cache::{AccessOutcome, MemorySystem, PrefetchOutcome};
pub use counters::CycleCounters;
pub use exec::{Executor, ExecutorConfig, RefObservation};
pub use ozq::Ozq;
pub use streams::{AddressStreams, StreamMode};
