//! The simulated data-memory hierarchy: L1D/L2/L3, TLB, in-flight fills.

use std::collections::HashMap;

use ltsp_ir::{CacheLevel, DataClass};
use ltsp_machine::CacheGeometry;

/// One set-associative, LRU cache level. Tags are stored per set in MRU
/// order (front = most recent).
#[derive(Debug, Clone)]
struct SetAssocCache {
    sets: Vec<Vec<u64>>,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
}

impl SetAssocCache {
    fn new(capacity_bytes: u64, ways: u32, line_bytes: u32) -> Self {
        let line_shift = line_bytes.trailing_zeros();
        assert_eq!(
            1 << line_shift,
            line_bytes,
            "line size must be a power of two"
        );
        let sets = capacity_bytes / (u64::from(ways) * u64::from(line_bytes));
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        SetAssocCache {
            sets: vec![Vec::new(); sets as usize],
            ways: ways as usize,
            line_shift,
            set_mask: sets - 1,
        }
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line & self.set_mask) as usize, line)
    }

    /// Probes for the line; on hit, refreshes LRU position.
    fn probe(&mut self, addr: u64) -> bool {
        let (set, line) = self.locate(addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            let tag = ways.remove(pos);
            ways.insert(0, tag);
            true
        } else {
            false
        }
    }

    /// Inserts the line as MRU, evicting the LRU way if needed.
    fn insert(&mut self, addr: u64) {
        let (set, line) = self.locate(addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            let tag = ways.remove(pos);
            ways.insert(0, tag);
            return;
        }
        if ways.len() == self.ways {
            ways.pop();
        }
        ways.insert(0, line);
    }

    fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

/// Fully-associative-by-sets LRU TLB over pages.
#[derive(Debug, Clone)]
struct Tlb {
    entries: Vec<u64>,
    capacity: usize,
    page_shift: u32,
}

impl Tlb {
    fn new(entries: u32, page_bytes: u64) -> Self {
        let page_shift = page_bytes.trailing_zeros();
        assert_eq!(
            1u64 << page_shift,
            page_bytes,
            "page size must be a power of two"
        );
        Tlb {
            entries: Vec::new(),
            capacity: entries as usize,
            page_shift,
        }
    }

    /// Returns `true` on a TLB *miss* (and installs the page).
    fn access_misses(&mut self, addr: u64) -> bool {
        let page = addr >> self.page_shift;
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            let p = self.entries.remove(pos);
            self.entries.insert(0, p);
            false
        } else {
            if self.entries.len() == self.capacity {
                self.entries.pop();
            }
            self.entries.insert(0, page);
            true
        }
    }

    fn clear(&mut self) {
        self.entries.clear();
    }
}

/// What one software prefetch accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchOutcome {
    /// Cycles until the prefetch's fill completes (the OzQ entry's
    /// lifetime).
    pub latency: u32,
    /// The line was already resident at the prefetch's target level (or
    /// closer): the prefetch changed nothing about residency and was
    /// pure issue-slot cost. In-flight fills are *not* redundant — a
    /// streaming prefetch's later same-line issues ride the miss an
    /// earlier issue started.
    pub redundant: bool,
}

/// The result of one demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Cycles until the data is available to the pipeline.
    pub latency: u32,
    /// Where the line was found (the fill source for misses).
    pub level: CacheLevel,
    /// Whether address translation missed the TLB.
    pub tlb_miss: bool,
    /// Whether the access merged with an in-flight fill.
    pub merged: bool,
}

/// The complete simulated memory system. Cache and TLB state persists
/// across loop executions of a benchmark, which is what makes low
/// trip-count loops with small footprints cheap (their lines stay warm) —
/// the regression scenario of the paper's Sec. 4.2.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    geo: CacheGeometry,
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    tlb: Tlb,
    /// In-flight line fills: 128-byte-line address → completion time.
    inflight: HashMap<u64, u64>,
    /// Earliest cycle at which main memory can start the next line fill
    /// (bandwidth serialization).
    next_memory_fill: u64,
}

impl MemorySystem {
    /// Builds the hierarchy from the machine's geometry.
    pub fn new(geo: CacheGeometry) -> Self {
        MemorySystem {
            l1: SetAssocCache::new(geo.l1.capacity_bytes, geo.l1.ways, geo.l1.line_bytes),
            l2: SetAssocCache::new(geo.l2.capacity_bytes, geo.l2.ways, geo.l2.line_bytes),
            l3: SetAssocCache::new(geo.l3.capacity_bytes, geo.l3.ways, geo.l3.line_bytes),
            tlb: Tlb::new(geo.tlb.entries, geo.tlb.page_bytes),
            inflight: HashMap::new(),
            next_memory_fill: 0,
            geo,
        }
    }

    /// Reserves the next memory-fill slot at or after `now`, returning the
    /// cycles until the fill completes (memory latency plus any bandwidth
    /// queueing delay).
    fn memory_fill_latency(&mut self, now: u64) -> u32 {
        let start = now.max(self.next_memory_fill);
        self.next_memory_fill = start + u64::from(self.geo.memory_fill_interval);
        ((start - now) + u64::from(self.geo.memory_latency)) as u32
    }

    fn inflight_key(&self, addr: u64) -> u64 {
        addr >> self.geo.l2.line_bytes.trailing_zeros()
    }

    fn drain_inflight(&mut self, now: u64) {
        self.inflight.retain(|_, &mut done| done > now);
    }

    /// A demand load or store at absolute cycle `now`.
    ///
    /// Misses install the line in every level on the fill path (FP data
    /// bypasses L1D) and register an in-flight fill; later accesses to the
    /// same line before completion pay only the remaining latency —
    /// this is the memory-level-parallelism the paper's load clustering
    /// exploits.
    pub fn demand_access(
        &mut self,
        addr: u64,
        data: DataClass,
        now: u64,
        is_store: bool,
    ) -> AccessOutcome {
        self.drain_inflight(now);
        let tlb_miss = self.tlb.access_misses(addr);
        let extra = if tlb_miss {
            self.geo.tlb.miss_penalty
        } else {
            0
        };

        // Merge with an in-flight fill: pay only the remaining cycles.
        let key = self.inflight_key(addr);
        if let Some(&done) = self.inflight.get(&key) {
            // The line is already on its way; promote into the caches (it
            // was inserted at fill start) and report the remainder.
            let remaining = (done - now) as u32;
            return AccessOutcome {
                latency: remaining.max(1) + extra,
                level: CacheLevel::L2, // delivered via the L2 fill path
                tlb_miss,
                merged: true,
            };
        }

        let use_l1 = data == DataClass::Int;
        if use_l1 && self.l1.probe(addr) {
            return AccessOutcome {
                latency: self.geo.l1.best_latency + extra,
                level: CacheLevel::L1,
                tlb_miss,
                merged: false,
            };
        }
        if self.l2.probe(addr) {
            if use_l1 {
                self.l1.insert(addr);
            }
            return AccessOutcome {
                latency: self.geo.l2.best_latency + extra,
                level: CacheLevel::L2,
                tlb_miss,
                merged: false,
            };
        }
        if self.l3.probe(addr) {
            self.l2.insert(addr);
            if use_l1 {
                self.l1.insert(addr);
            }
            return AccessOutcome {
                latency: self.geo.l3.best_latency + extra,
                level: CacheLevel::L3,
                tlb_miss,
                merged: false,
            };
        }
        // Memory fill (bandwidth-limited).
        let latency = self.memory_fill_latency(now) + extra;
        self.l3.insert(addr);
        self.l2.insert(addr);
        if use_l1 {
            self.l1.insert(addr);
        }
        if !is_store {
            self.inflight.insert(key, now + u64::from(latency));
        }
        AccessOutcome {
            latency,
            level: CacheLevel::Memory,
            tlb_miss,
            merged: false,
        }
    }

    /// A software prefetch into `target` at cycle `now`. Returns the cycles
    /// until the fill completes (the OzQ entry's lifetime) and whether the
    /// prefetch was redundant. Never faults, does not touch L1 unless
    /// targeted there.
    pub fn prefetch(&mut self, addr: u64, target: CacheLevel, now: u64) -> PrefetchOutcome {
        self.drain_inflight(now);
        let tlb_miss = self.tlb.access_misses(addr);
        let extra = if tlb_miss {
            self.geo.tlb.miss_penalty
        } else {
            0
        };
        let key = self.inflight_key(addr);
        if let Some(&done) = self.inflight.get(&key) {
            // Riding a fill already on the way — the normal mode of a
            // streaming prefetch whose earlier issue started the miss,
            // so not counted redundant.
            return PrefetchOutcome {
                latency: (done - now) as u32 + extra,
                redundant: false,
            };
        }
        // Where is the line now?
        let in_l1 = target == CacheLevel::L1 && self.l1.probe(addr);
        let l2_hit = self.l2.probe(addr);
        let latency = if l2_hit {
            self.geo.l2.best_latency
        } else if self.l3.probe(addr) {
            self.l2.insert(addr);
            self.geo.l3.best_latency
        } else {
            let lat = self.memory_fill_latency(now);
            self.l3.insert(addr);
            self.l2.insert(addr);
            self.inflight.insert(key, now + u64::from(lat + extra));
            lat
        };
        if target == CacheLevel::L1 {
            self.l1.insert(addr);
        }
        // Redundant means the line was already resident at the target
        // level (or closer): the prefetch changed nothing about where
        // the demand load will be served from. An L1-target prefetch
        // that finds the line only in L2 still has promotion value.
        let redundant = if target == CacheLevel::L1 {
            in_l1
        } else {
            l2_hit
        };
        PrefetchOutcome {
            latency: latency + extra,
            redundant,
        }
    }

    /// Empties all caches, the TLB and in-flight state.
    pub fn clear(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.l3.clear();
        self.tlb.clear();
        self.inflight.clear();
        self.next_memory_fill = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_machine::MachineModel;

    fn sys() -> MemorySystem {
        MemorySystem::new(*MachineModel::itanium2().caches())
    }

    #[test]
    fn cold_miss_then_l1_hit() {
        let mut s = sys();
        let first = s.demand_access(0x1_0000, DataClass::Int, 0, false);
        assert_eq!(first.level, CacheLevel::Memory);
        assert!(first.latency >= 165);
        // Long after the fill completes:
        let second = s.demand_access(0x1_0000, DataClass::Int, 1000, false);
        assert_eq!(second.level, CacheLevel::L1);
        assert_eq!(second.latency, 1);
    }

    #[test]
    fn fp_bypasses_l1() {
        let mut s = sys();
        s.demand_access(0x2_0000, DataClass::Fp, 0, false);
        let again = s.demand_access(0x2_0000, DataClass::Fp, 1000, false);
        assert_eq!(again.level, CacheLevel::L2, "FP hits L2, not L1");
        assert_eq!(again.latency, 5);
    }

    #[test]
    fn inflight_merge_pays_remaining_latency() {
        let mut s = sys();
        let first = s.demand_access(0x3_0000, DataClass::Int, 0, false);
        let full = u64::from(first.latency);
        // 40 cycles later, same line: remaining = full - 40.
        let second = s.demand_access(0x3_0008, DataClass::Int, 40, false);
        assert!(second.merged);
        assert_eq!(u64::from(second.latency), full - 40);
    }

    #[test]
    fn lru_eviction_in_l1() {
        let mut s = sys();
        // L1: 16KB, 4-way, 64B lines, 64 sets. Fill 5 lines in set 0.
        for k in 0..5u64 {
            // set index bits: addr >> 6 & 63 == 0 -> addr multiples of 64*64.
            s.demand_access(k * 64 * 64, DataClass::Int, k * 10_000, false);
        }
        // First line evicted from L1 but still in L2.
        let back = s.demand_access(0, DataClass::Int, 1_000_000, false);
        assert_eq!(back.level, CacheLevel::L2);
    }

    #[test]
    fn prefetch_fills_target_level() {
        let mut s = sys();
        let out = s.prefetch(0x9_0000, CacheLevel::L2, 0);
        assert!(out.latency >= 165, "cold prefetch goes to memory");
        assert!(!out.redundant, "a cold prefetch does real work");
        // After the fill, a demand access hits L2 (prefetch skipped L1).
        let hit = s.demand_access(0x9_0000, DataClass::Int, 1000, false);
        assert_eq!(hit.level, CacheLevel::L2);
        // Prefetching again is cheap — and redundant (line already at
        // its target level).
        let again = s.prefetch(0x9_0000, CacheLevel::L2, 2000);
        assert_eq!(again.latency, 5);
        assert!(again.redundant);
    }

    #[test]
    fn demand_after_prefetch_in_flight_merges() {
        let mut s = sys();
        let out = s.prefetch(0xA_0000, CacheLevel::L2, 0);
        let d = s.demand_access(0xA_0000, DataClass::Int, 50, false);
        assert!(d.merged);
        assert_eq!(u64::from(d.latency), u64::from(out.latency) - 50);
    }

    #[test]
    fn tlb_miss_penalty_applies_once_per_page() {
        let mut s = sys();
        let a = s.demand_access(0x50_0000, DataClass::Int, 0, false);
        assert!(a.tlb_miss);
        let b = s.demand_access(0x50_0040, DataClass::Int, 1000, false);
        assert!(!b.tlb_miss, "same 16K page is cached in the TLB");
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = sys();
        s.demand_access(0x1_0000, DataClass::Int, 0, false);
        s.clear();
        let again = s.demand_access(0x1_0000, DataClass::Int, 10_000, false);
        assert_eq!(again.level, CacheLevel::Memory);
        assert!(again.tlb_miss);
    }
}
