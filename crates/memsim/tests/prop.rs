//! Property-based tests of the memory system and executor.

use proptest::prelude::*;

use ltsp_core::{compile_loop_with_profile, CompileConfig, LatencyPolicy};
use ltsp_ir::{CacheLevel, DataClass};
use ltsp_machine::MachineModel;
use ltsp_memsim::{Executor, ExecutorConfig, MemorySystem, Ozq, StreamMode};
use ltsp_workloads::random_loop;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any access, re-accessing the same address much later hits at
    /// L1 (int) or L2 (FP) — lines land where they should.
    #[test]
    fn refill_then_hit(addr in 0u64..0x1_0000_0000, fp in any::<bool>()) {
        let m = MachineModel::itanium2();
        let mut sys = MemorySystem::new(*m.caches());
        let dc = if fp { DataClass::Fp } else { DataClass::Int };
        let first = sys.demand_access(addr, dc, 0, false);
        let later = sys.demand_access(addr, dc, 1_000_000, false);
        prop_assert!(later.latency <= first.latency);
        match dc {
            DataClass::Int => prop_assert_eq!(later.level, CacheLevel::L1),
            DataClass::Fp => prop_assert_eq!(later.level, CacheLevel::L2),
        }
    }

    /// A merged access never reports more than the full memory latency
    /// plus the TLB penalty, and in-flight merging is monotone: later
    /// accesses pay less.
    #[test]
    fn inflight_merge_monotone(addr in 0u64..0x1000_0000, gaps in proptest::collection::vec(1u64..40, 1..6)) {
        let m = MachineModel::itanium2();
        let mut sys = MemorySystem::new(*m.caches());
        let first = sys.demand_access(addr, DataClass::Int, 0, false);
        let mut t = 0u64;
        let mut prev = u32::MAX;
        for g in gaps {
            t += g;
            if t >= u64::from(first.latency) { break; }
            let a = sys.demand_access(addr, DataClass::Int, t, false);
            prop_assert!(a.merged);
            prop_assert!(a.latency <= prev);
            prop_assert!(u64::from(a.latency) + t <= u64::from(first.latency) + 25);
            prev = a.latency;
        }
    }

    /// The OzQ never admits more than its capacity, and `wait_for_slot`
    /// returns a time at which a slot is genuinely free.
    #[test]
    fn ozq_capacity_respected(
        cap in 1u32..16,
        reqs in proptest::collection::vec((0u64..100, 1u32..200), 1..64),
    ) {
        let mut q = Ozq::new(cap);
        let mut now = 0u64;
        for (delay, lat) in reqs {
            now += delay;
            let issue = q.wait_for_slot(now);
            prop_assert!(issue >= now);
            prop_assert!(q.occupancy() < cap as usize);
            q.push_completion(issue + u64::from(lat));
            now = issue;
        }
    }

    /// Counter arithmetic: `a + b` is component-wise, and scaling by 1.0
    /// is the identity.
    #[test]
    fn counter_algebra(seed in 0u64..3_000, trip_a in 1u64..120, trip_b in 1u64..120) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let c = compile_loop_with_profile(
            &lp, &m, &CompileConfig::new(LatencyPolicy::Baseline), 100.0);
        let run = |trip: u64| {
            let mut ex = Executor::new(&c.lp, &c.kernel, &m, c.regs_total,
                ExecutorConfig::default());
            ex.run_entry(trip);
            *ex.counters()
        };
        let a = run(trip_a);
        let b = run(trip_b);
        let sum = a + b;
        prop_assert_eq!(sum.total, a.total + b.total);
        prop_assert_eq!(sum.loads, a.loads + b.loads);
        prop_assert!(sum.is_consistent());
        prop_assert_eq!(a.scaled(1.0), a);
    }

    /// Cycle accounting stays consistent across multiple entries with
    /// varying trip counts, and kernel iterations add up exactly.
    #[test]
    fn multi_entry_accounting(seed in 0u64..3_000, trips in proptest::collection::vec(1u64..60, 1..8)) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let c = compile_loop_with_profile(
            &lp, &m, &CompileConfig::new(LatencyPolicy::HloHints), 50.0);
        let mut ex = Executor::new(&c.lp, &c.kernel, &m, c.regs_total,
            ExecutorConfig { stream_mode: StreamMode::Restart, ..ExecutorConfig::default() });
        let mut expect_src = 0u64;
        let mut expect_kernel = 0u64;
        for &t in &trips {
            ex.run_entry(t);
            expect_src += t;
            expect_kernel += t + u64::from(c.kernel.stage_count()) - 1;
        }
        let counters = ex.counters();
        prop_assert!(counters.is_consistent());
        prop_assert_eq!(counters.source_iters, expect_src);
        prop_assert_eq!(counters.kernel_iters, expect_kernel);
        prop_assert_eq!(counters.entries, trips.len() as u64);
    }

    /// Restart-mode streams replay addresses, so a second entry is never
    /// slower than the first (caches only get warmer).
    #[test]
    fn restart_entries_warm_up(seed in 0u64..3_000, trip in 8u64..100) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let c = compile_loop_with_profile(
            &lp, &m, &CompileConfig::new(LatencyPolicy::Baseline), trip as f64);
        let mut ex = Executor::new(&c.lp, &c.kernel, &m, c.regs_total,
            ExecutorConfig { stream_mode: StreamMode::Restart, ..ExecutorConfig::default() });
        ex.run_entry(trip);
        let first = ex.counters().total;
        ex.run_entry(trip);
        let second = ex.counters().total - first;
        prop_assert!(second <= first + 5, "second entry slower: {} vs {}", second, first);
    }
}
