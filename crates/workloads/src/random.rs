//! Random well-formed loop generation for property-based testing.
//!
//! Loops are built exclusively through [`LoopBuilder`], so every generated
//! loop is valid by construction; the generator covers all access-pattern
//! classes, both data classes, reductions (loop-carried recurrences) and
//! stores. Deterministic from the seed.

use ltsp_ir::{DataClass, LoopBuilder, LoopIr, SplitMix64, VReg};

/// Generates a random but well-formed innermost loop from a seed.
///
/// The shape distribution:
/// - 1–4 affine streams (int/FP, strides 4–512 bytes);
/// - optionally a gather, a symbolic-stride stream, and/or a pointer
///   chase with a dependent field load;
/// - a random ALU/FP dag over the loaded values, with reduction steps
///   (loop-carried) mixed in;
/// - optionally a store of one computed value.
pub fn random_loop(seed: u64) -> LoopIr {
    let mut rng = SplitMix64::new(seed);
    let mut b = LoopBuilder::new(format!("random-{seed:x}"));
    let mut int_vals: Vec<VReg> = Vec::new();
    let mut fp_vals: Vec<VReg> = Vec::new();

    let n_streams = 1 + rng.next_below(4);
    for i in 0..n_streams {
        let fp = rng.next_f64() < 0.5;
        let stride = [4i64, 8, 16, 64, 256, 512][rng.next_below(6) as usize];
        let data = if fp { DataClass::Fp } else { DataClass::Int };
        let r = b.affine_ref(
            &format!("s{i}"),
            data,
            0x10_0000 + i * 0x100_0000,
            stride,
            if fp { 8 } else { 4 },
        );
        let v = b.load(r);
        if fp {
            fp_vals.push(v);
        } else {
            int_vals.push(v);
        }
    }

    if rng.next_f64() < 0.35 {
        let idx = b.affine_ref("gidx", DataClass::Int, 0x4000_0000, 4, 4);
        let fp = rng.next_f64() < 0.5;
        let data = if fp { DataClass::Fp } else { DataClass::Int };
        let region = 1u64 << (14 + rng.next_below(12)); // 16 KB .. 32 MB
        let tgt = b.gather_ref(
            "gtgt",
            data,
            idx,
            0x5000_0000,
            if fp { 8 } else { 4 },
            region,
        );
        let vi = b.load(idx);
        int_vals.push(vi);
        let vt = b.load(tgt);
        if fp {
            fp_vals.push(vt);
        } else {
            int_vals.push(vt);
        }
    }

    if rng.next_f64() < 0.3 {
        let stride = [512i64, 4096, 65536][rng.next_below(3) as usize];
        let r = b.symbolic_ref("sym", DataClass::Fp, 0x6000_0000, stride, 8);
        fp_vals.push(b.load(r));
    }

    if rng.next_f64() < 0.25 {
        let region = 1u64 << (18 + rng.next_below(8));
        let node = b.chase_ref("chase", 0x7000_0000, 64, region, 0.2);
        let fld = b.deref_ref("chase->f", DataClass::Int, node, 128, region, 8);
        int_vals.push(b.load(node));
        int_vals.push(b.load(fld));
    }

    // Random computation dag.
    let n_ops = 1 + rng.next_below(6);
    for _ in 0..n_ops {
        let use_fp = !fp_vals.is_empty() && (int_vals.is_empty() || rng.next_f64() < 0.5);
        if use_fp {
            let a = fp_vals[rng.next_below(fp_vals.len() as u64) as usize];
            let c = fp_vals[rng.next_below(fp_vals.len() as u64) as usize];
            let v = match rng.next_below(4) {
                0 => b.fadd(a, c),
                1 => b.fmul(a, c),
                2 => b.fma_reduce(a, c),
                _ => b.fadd_reduce(a),
            };
            fp_vals.push(v);
        } else if !int_vals.is_empty() {
            let a = int_vals[rng.next_below(int_vals.len() as u64) as usize];
            let c = int_vals[rng.next_below(int_vals.len() as u64) as usize];
            let v = match rng.next_below(5) {
                0 => b.add(a, c),
                1 => b.sub(a, c),
                2 => b.and(a, c),
                3 => b.mul(a, c),
                _ => b.add_reduce(a),
            };
            int_vals.push(v);
        }
    }

    // Optional if-converted diamond over integer values.
    if int_vals.len() >= 2 && rng.next_f64() < 0.35 {
        let a = int_vals[rng.next_below(int_vals.len() as u64) as usize];
        let c2 = int_vals[rng.next_below(int_vals.len() as u64) as usize];
        let pred = b.cmp(a, c2);
        b.begin_if(pred);
        let t = b.add(a, c2);
        b.begin_else();
        let e = b.sub(a, c2);
        b.end_if();
        let j = b.sel(pred, t, e);
        int_vals.push(j);
    }

    // Optional store.
    if rng.next_f64() < 0.5 {
        if !fp_vals.is_empty() && rng.next_f64() < 0.5 {
            let out = b.affine_ref("outf", DataClass::Fp, 0x9000_0000, 8, 8);
            let v = *fp_vals.last().expect("non-empty");
            b.store(out, v);
        } else if !int_vals.is_empty() {
            let out = b.affine_ref("outi", DataClass::Int, 0x9800_0000, 4, 4);
            let v = *int_vals.last().expect("non-empty");
            b.store(out, v);
        }
    }

    b.build()
        .expect("generated loops are valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn many_seeds_build() {
        for seed in 0..500 {
            let lp = random_loop(seed);
            assert!(!lp.insts().is_empty());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(random_loop(42), random_loop(42));
    }

    #[test]
    fn covers_pattern_variety() {
        let mut kinds = std::collections::HashSet::new();
        for seed in 0..200 {
            for m in random_loop(seed).memrefs() {
                kinds.insert(m.pattern().kind_name());
            }
        }
        for k in ["affine", "gather", "symbolic", "chase", "deref"] {
            assert!(kinds.contains(k), "pattern {k} never generated");
        }
    }
}
