//! Trip-count distributions.

use ltsp_ir::SplitMix64;

/// A distribution of loop trip counts, sampled per loop entry.
///
/// Distinct training and reference distributions on the same loop model
/// the PGO train/ref mismatch cases of the paper (177.mesa).
#[derive(Debug, Clone, PartialEq)]
pub enum TripDistribution {
    /// Every entry runs exactly `n` iterations.
    Fixed(u64),
    /// Uniform in `[lo, hi]` inclusive.
    Uniform {
        /// Smallest trip count.
        lo: u64,
        /// Largest trip count.
        hi: u64,
    },
    /// A weighted mixture of fixed trip counts; weights need not sum to 1.
    Mixture(Vec<(f64, u64)>),
}

impl TripDistribution {
    /// Samples one trip count (always ≥ 1).
    pub fn sample(&self, rng: &mut SplitMix64) -> u64 {
        match self {
            TripDistribution::Fixed(n) => (*n).max(1),
            TripDistribution::Uniform { lo, hi } => {
                let (lo, hi) = (*lo.min(hi), *hi.max(lo));
                (lo + rng.next_below(hi - lo + 1)).max(1)
            }
            TripDistribution::Mixture(parts) => {
                let total: f64 = parts.iter().map(|(w, _)| w).sum();
                let mut x = rng.next_f64() * total;
                for (w, n) in parts {
                    if x < *w {
                        return (*n).max(1);
                    }
                    x -= w;
                }
                parts.last().map_or(1, |&(_, n)| n.max(1))
            }
        }
    }

    /// The distribution's mean — what a block-count profile would report
    /// as the loop's average trip count.
    pub fn mean(&self) -> f64 {
        match self {
            TripDistribution::Fixed(n) => *n as f64,
            TripDistribution::Uniform { lo, hi } => (*lo as f64 + *hi as f64) / 2.0,
            TripDistribution::Mixture(parts) => {
                let total: f64 = parts.iter().map(|(w, _)| w).sum();
                if total == 0.0 {
                    1.0
                } else {
                    parts.iter().map(|(w, n)| w * *n as f64).sum::<f64>() / total
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_is_constant() {
        let d = TripDistribution::Fixed(7);
        let mut rng = SplitMix64::new(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 7);
        }
        assert_eq!(d.mean(), 7.0);
    }

    #[test]
    fn uniform_stays_in_range_and_mean_matches() {
        let d = TripDistribution::Uniform { lo: 5, hi: 15 };
        let mut rng = SplitMix64::new(2);
        let mut sum = 0u64;
        for _ in 0..2000 {
            let s = d.sample(&mut rng);
            assert!((5..=15).contains(&s));
            sum += s;
        }
        let avg = sum as f64 / 2000.0;
        assert!((avg - 10.0).abs() < 0.5, "avg={avg}");
        assert_eq!(d.mean(), 10.0);
    }

    #[test]
    fn mixture_weights_respected() {
        // 90% trip 2, 10% trip 1000: high mean, mostly short runs — the
        // paper's "low-trip executions counterbalanced by very long ones".
        let d = TripDistribution::Mixture(vec![(0.9, 2), (0.1, 1000)]);
        assert!((d.mean() - (0.9 * 2.0 + 0.1 * 1000.0)).abs() < 1e-9);
        let mut rng = SplitMix64::new(3);
        let mut big = 0;
        for _ in 0..1000 {
            if d.sample(&mut rng) == 1000 {
                big += 1;
            }
        }
        assert!((50..200).contains(&big), "~10% big: {big}");
    }

    #[test]
    fn zero_floor() {
        let d = TripDistribution::Fixed(0);
        let mut rng = SplitMix64::new(4);
        assert_eq!(d.sample(&mut rng), 1);
    }
}
