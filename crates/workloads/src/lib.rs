//! Synthetic SPEC-like workloads for the latency-tolerant-pipelining
//! experiments.
//!
//! The reproduced paper evaluates on SPEC CPU2000 and CPU2006 on real
//! hardware. Neither suite can be redistributed or executed here, so this
//! crate models each benchmark the paper charts as a small mix of
//! parameterized loop kernels whose *memory behaviour* matches what the
//! paper reports or implies per benchmark:
//!
//! - 429.mcf's `refresh_potential()` pointer chase with delinquent
//!   indirect field loads and an average trip count of 2.3 (Sec. 4.4);
//! - 464.h264ref's hot motion-search loop with trip count ≈ 10 and an
//!   L1-resident working set (the Sec. 4.2 regression);
//! - 177.mesa's `gl_write_texture_span()` loop with a training trip count
//!   of 154 but a reference trip count of 8 (the PGO-mismatch loss);
//! - 445.gobmk's indirect references with low runtime trip counts *and*
//!   low latencies (the no-PGO outlier);
//! - FP-heavy gainers (444.namd, 462.libquantum, 481.wrf, 179.art,
//!   200.sixtrack, …) built from streaming, stencil, gather and
//!   symbolic-stride kernels with footprints that miss to L3/memory.
//!
//! Benchmarks with no hot pipelined loops carry an empty loop mix and are
//! unaffected by any policy — as in the paper, "some do not even contain
//! hot pipelined loops in the first place".

mod bench;
mod kernels;
mod random;
mod suites;
mod trip;

pub use bench::{Benchmark, LoopSpec, Suite};
pub use kernels::{
    compute_heavy, gather_update, hash_walk, kernel_library, mcf_refresh, mcf_refresh_predicated,
    memory_recurrence, motion_search, pointer_array_walk, reduction_int, saxpy, scheduling_heavy,
    stencil3, stream_sum, symbolic_walk, texture_span, triad,
};
pub use random::random_loop;
pub use suites::{cpu2000, cpu2006, find_benchmark};
pub use trip::TripDistribution;
