//! Benchmark and loop-mix definitions.

use ltsp_ir::LoopIr;
use ltsp_memsim::StreamMode;

use crate::trip::TripDistribution;

/// Which SPEC suite a synthetic benchmark models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2000.
    Cpu2000,
    /// SPEC CPU2006.
    Cpu2006,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Cpu2000 => write!(f, "CPU2000"),
            Suite::Cpu2006 => write!(f, "CPU2006"),
        }
    }
}

/// One hot pipelined loop inside a benchmark, with its execution profile.
#[derive(Debug, Clone)]
pub struct LoopSpec {
    /// Human-readable name (source function the paper mentions, where
    /// applicable).
    pub name: String,
    /// The loop body.
    pub loop_ir: LoopIr,
    /// Trip counts observed on the *reference* inputs (what actually runs).
    pub ref_trips: TripDistribution,
    /// Trip counts observed on the *training* inputs (what PGO sees).
    pub train_trips: TripDistribution,
    /// What the compiler's static heuristics would estimate without PGO.
    pub static_trip_estimate: f64,
    /// Loop entries simulated per measurement (scaled by the runner).
    pub entries: u32,
    /// Address-stream behaviour across entries.
    pub stream_mode: StreamMode,
}

impl LoopSpec {
    /// Convenience constructor with training = reference trips and a
    /// static estimate equal to the reference mean.
    pub fn simple(
        name: impl Into<String>,
        loop_ir: LoopIr,
        trips: TripDistribution,
        entries: u32,
        stream_mode: StreamMode,
    ) -> Self {
        let mean = trips.mean();
        LoopSpec {
            name: name.into(),
            loop_ir,
            ref_trips: trips.clone(),
            train_trips: trips,
            static_trip_estimate: mean,
            entries,
            stream_mode,
        }
    }

    /// Overrides the training distribution (PGO mismatch modelling).
    pub fn with_train(mut self, train: TripDistribution) -> Self {
        self.train_trips = train;
        self
    }

    /// Overrides the static estimate (no-PGO modelling).
    pub fn with_static_estimate(mut self, estimate: f64) -> Self {
        self.static_trip_estimate = estimate;
        self
    }
}

/// A synthetic benchmark: a named mix of hot pipelined loops plus the
/// share of total time those loops account for.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// SPEC-style name ("429.mcf").
    pub name: &'static str,
    /// The suite it belongs to.
    pub suite: Suite,
    /// The hot pipelined loops (may be empty).
    pub loops: Vec<LoopSpec>,
    /// Fraction of the benchmark's baseline time spent in these loops;
    /// the remainder is unaffected by pipelining policy.
    pub pipelined_fraction: f64,
}

impl Benchmark {
    /// A benchmark with no hot pipelined loops (policy-invariant).
    pub fn flat(name: &'static str, suite: Suite) -> Self {
        Benchmark {
            name,
            suite,
            loops: Vec::new(),
            pipelined_fraction: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::saxpy;

    #[test]
    fn simple_spec_defaults() {
        let s = LoopSpec::simple(
            "l",
            saxpy("s"),
            TripDistribution::Fixed(100),
            10,
            StreamMode::Progressive,
        );
        assert_eq!(s.static_trip_estimate, 100.0);
        assert_eq!(s.train_trips, s.ref_trips);
    }

    #[test]
    fn train_and_static_overrides() {
        let s = LoopSpec::simple(
            "l",
            saxpy("s"),
            TripDistribution::Fixed(8),
            10,
            StreamMode::Restart,
        )
        .with_train(TripDistribution::Fixed(154))
        .with_static_estimate(64.0);
        assert_eq!(s.ref_trips.mean(), 8.0);
        assert_eq!(s.train_trips.mean(), 154.0);
        assert_eq!(s.static_trip_estimate, 64.0);
    }

    #[test]
    fn flat_benchmark_has_no_loops() {
        let b = Benchmark::flat("403.gcc", Suite::Cpu2006);
        assert!(b.loops.is_empty());
        assert_eq!(b.pipelined_fraction, 0.0);
    }
}
