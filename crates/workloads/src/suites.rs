//! The synthetic SPEC CPU2000 / CPU2006 suites.
//!
//! Each benchmark the paper charts is modeled as a mix of kernels whose
//! memory behaviour induces the qualitative result the paper reports for
//! it (see the crate docs and DESIGN.md). Benchmarks the paper shows as
//! flat carry no hot pipelined loops.

use ltsp_ir::DataClass;
use ltsp_memsim::StreamMode;

use crate::bench::{Benchmark, LoopSpec, Suite};
use crate::kernels;
use crate::trip::TripDistribution as T;

fn spec(name: &str, lp: ltsp_ir::LoopIr, trips: T, entries: u32, mode: StreamMode) -> LoopSpec {
    LoopSpec::simple(name, lp, trips, entries, mode)
}

/// A benchmark dominated by well-prefetched FP streaming: policy changes
/// barely move it.
fn streaming_fp(name: &'static str, suite: Suite, f: f64) -> Benchmark {
    Benchmark {
        name,
        suite,
        loops: vec![spec(
            "stream",
            kernels::triad(name),
            T::Uniform { lo: 400, hi: 800 },
            6,
            StreamMode::Progressive,
        )],
        pipelined_fraction: f,
    }
}

/// A benchmark with delinquent FP gathers over a `region` working set:
/// the prototypical gainer.
fn fp_gather(name: &'static str, suite: Suite, region: u64, f: f64) -> Benchmark {
    Benchmark {
        name,
        suite,
        loops: vec![spec(
            "gather",
            kernels::gather_update(name, DataClass::Fp, region),
            T::Uniform { lo: 300, hi: 700 },
            12,
            StreamMode::Progressive,
        )],
        pipelined_fraction: f,
    }
}

/// Symbolic-stride FP sweeps (clamped prefetch distance; latency exposed).
fn fp_symbolic(name: &'static str, suite: Suite, stride: i64, f: f64) -> Benchmark {
    Benchmark {
        name,
        suite,
        loops: vec![spec(
            "column-walk",
            kernels::symbolic_walk(name, stride),
            T::Uniform { lo: 300, hi: 600 },
            12,
            StreamMode::Progressive,
        )],
        pipelined_fraction: f,
    }
}

/// Pointer-array dereference chains (reduced-distance indirect prefetch).
fn fp_pointer_array(name: &'static str, suite: Suite, region: u64, f: f64) -> Benchmark {
    Benchmark {
        name,
        suite,
        loops: vec![spec(
            "ptr-walk",
            kernels::pointer_array_walk(name, region),
            T::Uniform { lo: 200, hi: 500 },
            12,
            StreamMode::Progressive,
        )],
        pipelined_fraction: f,
    }
}

/// Compute-bound FP benchmark: pipelined loops exist but stalls are rare.
fn compute_bound(name: &'static str, suite: Suite, f: f64) -> Benchmark {
    Benchmark {
        name,
        suite,
        loops: vec![spec(
            "compute",
            kernels::compute_heavy(name),
            T::Uniform { lo: 200, hi: 400 },
            6,
            StreamMode::Progressive,
        )],
        pipelined_fraction: f,
    }
}

/// Warm integer scanning (bzip2/gzip-like): L1/L2-resident once warm.
fn warm_int(name: &'static str, suite: Suite, trip: u64, f: f64) -> Benchmark {
    Benchmark {
        name,
        suite,
        loops: vec![spec(
            "scan",
            kernels::reduction_int(name, 4),
            T::Uniform {
                lo: trip / 2,
                hi: trip * 2,
            },
            80,
            StreamMode::Restart,
        )
        // Static analysis sees a scan with unknown bounds and guesses
        // optimistically — the no-PGO failure mode of Fig. 9.
        .with_static_estimate(150.0)],
        pipelined_fraction: f,
    }
}

/// Appends a small, warm, low-trip-count helper loop to a benchmark: real
/// applications run many such loops, and they are exactly what blanket
/// boosting without a trip-count threshold punishes (Fig. 7, n = 0).
fn with_setup_loop(mut b: Benchmark, entries: u32) -> Benchmark {
    b.loops.push(spec(
        "setup",
        kernels::reduction_int("setup", 4),
        T::Uniform { lo: 3, hi: 9 },
        entries,
        StreamMode::Restart,
    ));
    b
}

/// The 429.mcf / 181.mcf model: the Sec. 4.4 pointer-chase loop (trip
/// count ≈ 2.3, delinquent fields) plus a high-trip delinquent integer
/// gather (the headroom-experiment gainer).
fn mcf(name: &'static str, suite: Suite) -> Benchmark {
    Benchmark {
        name,
        suite,
        loops: vec![
            spec(
                "refresh_potential",
                kernels::mcf_refresh("refresh_potential", 48 << 20),
                T::Mixture(vec![(0.75, 2), (0.25, 3)]), // mean 2.25 ≈ 2.3
                250,
                StreamMode::Progressive,
            ),
            spec(
                "arc-sweep",
                kernels::gather_update("arc-sweep", DataClass::Int, 64 << 20),
                T::Uniform { lo: 300, hi: 900 },
                12,
                StreamMode::Progressive,
            ),
        ],
        pipelined_fraction: 0.4,
    }
}

/// 464.h264ref: hot low-trip motion-search loop over an L1-warm window.
fn h264ref() -> Benchmark {
    Benchmark {
        name: "464.h264ref",
        suite: Suite::Cpu2006,
        loops: vec![
            spec(
                "FastFullPelBlockMotionSearch",
                kernels::motion_search("motion-search"),
                T::Uniform { lo: 8, hi: 12 }, // "around 10"
                400,
                StreamMode::Restart,
            )
            .with_static_estimate(100.0),
            spec(
                "interpolate",
                kernels::stream_sum("interpolate", DataClass::Int, 4),
                T::Uniform { lo: 100, hi: 300 },
                10,
                StreamMode::Progressive,
            ),
        ],
        pipelined_fraction: 0.25,
    }
}

/// 177.mesa: training trip count 154, reference trip count 8, warm data.
fn mesa() -> Benchmark {
    Benchmark {
        name: "177.mesa",
        suite: Suite::Cpu2000,
        loops: vec![spec(
            "gl_write_texture_span",
            kernels::texture_span("texture-span"),
            T::Fixed(8),
            500,
            StreamMode::Restart,
        )
        .with_train(T::Fixed(154))
        .with_static_estimate(154.0)],
        pipelined_fraction: 0.15,
    }
}

/// 445.gobmk: L2-resident indirect references, low runtime trip counts,
/// but optimistic static estimates — the no-PGO worst case.
fn gobmk() -> Benchmark {
    Benchmark {
        name: "445.gobmk",
        suite: Suite::Cpu2006,
        loops: vec![spec(
            "board-scan",
            kernels::hash_walk("board-scan", 8 * 1024),
            T::Uniform { lo: 4, hi: 8 },
            400,
            StreamMode::Restart,
        )
        .with_static_estimate(128.0)],
        pipelined_fraction: 0.25,
    }
}

/// The CPU2006 suite (the 29 benchmarks of Figs. 7–9).
pub fn cpu2006() -> Vec<Benchmark> {
    use Suite::Cpu2006 as S6;
    vec![
        Benchmark::flat("400.perlbench", S6),
        warm_int("401.bzip2", S6, 150, 0.1),
        Benchmark::flat("403.gcc", S6),
        streaming_fp("410.bwaves", S6, 0.4),
        compute_bound("416.gamess", S6, 0.3),
        mcf("429.mcf", S6),
        with_setup_loop(fp_gather("433.milc", S6, 20 << 20, 0.2), 1500),
        with_setup_loop(fp_symbolic("434.zeusmp", S6, 2048, 0.1), 1500),
        with_setup_loop(fp_pointer_array("435.gromacs", S6, 12 << 20, 0.12), 1500),
        streaming_fp("436.cactusADM", S6, 0.45),
        with_setup_loop(fp_symbolic("437.leslie3d", S6, 4096, 0.12), 1500),
        Benchmark {
            name: "444.namd",
            suite: S6,
            loops: vec![
                spec(
                    "pairlist",
                    kernels::pointer_array_walk("pairlist", 32 << 20),
                    T::Uniform { lo: 300, hi: 600 },
                    12,
                    StreamMode::Progressive,
                ),
                spec(
                    "forces",
                    kernels::gather_update("forces", DataClass::Fp, 24 << 20),
                    T::Uniform { lo: 300, hi: 600 },
                    12,
                    StreamMode::Progressive,
                ),
            ],
            pipelined_fraction: 0.3,
        },
        gobmk(),
        Benchmark::flat("447.dealII", S6),
        with_setup_loop(fp_gather("450.soplex", S6, 28 << 20, 0.15), 1500),
        Benchmark::flat("453.povray", S6),
        compute_bound("454.calculix", S6, 0.3),
        warm_int("456.hmmer", S6, 200, 0.3),
        Benchmark::flat("458.sjeng", S6),
        with_setup_loop(fp_symbolic("459.GemsFDTD", S6, 2048, 0.12), 1500),
        Benchmark {
            name: "462.libquantum",
            suite: S6,
            loops: vec![
                spec(
                    "toffoli",
                    kernels::symbolic_walk("toffoli", 4096),
                    T::Uniform { lo: 500, hi: 1000 },
                    12,
                    StreamMode::Progressive,
                ),
                spec(
                    "sigma-x",
                    kernels::gather_update("sigma-x", DataClass::Fp, 40 << 20),
                    T::Uniform { lo: 500, hi: 1000 },
                    8,
                    StreamMode::Progressive,
                ),
            ],
            pipelined_fraction: 0.25,
        },
        h264ref(),
        compute_bound("465.tonto", S6, 0.25),
        streaming_fp("470.lbm", S6, 0.5),
        with_setup_loop(fp_pointer_array("471.omnetpp", S6, 40 << 20, 0.1), 1500),
        Benchmark {
            name: "473.astar",
            suite: S6,
            loops: vec![spec(
                "wayfind",
                kernels::gather_update("wayfind", DataClass::Int, 28 << 20),
                T::Uniform { lo: 25, hi: 55 },
                40,
                StreamMode::Progressive,
            )],
            pipelined_fraction: 0.18,
        },
        Benchmark {
            name: "481.wrf",
            suite: S6,
            loops: vec![
                spec(
                    "advect",
                    kernels::symbolic_walk("advect", 8192),
                    T::Uniform { lo: 200, hi: 500 },
                    12,
                    StreamMode::Progressive,
                ),
                spec(
                    "physics",
                    kernels::stencil3("physics"),
                    T::Uniform { lo: 200, hi: 500 },
                    8,
                    StreamMode::Progressive,
                ),
            ],
            pipelined_fraction: 0.18,
        },
        with_setup_loop(fp_gather("482.sphinx3", S6, 16 << 20, 0.15), 1500),
        Benchmark::flat("483.xalancbmk", S6),
    ]
}

/// The CPU2000 suite (the 26 benchmarks of Figs. 7–8).
pub fn cpu2000() -> Vec<Benchmark> {
    use Suite::Cpu2000 as S0;
    vec![
        warm_int("164.gzip", S0, 100, 0.1),
        with_setup_loop(streaming_fp("168.wupwise", S0, 0.4), 1500),
        with_setup_loop(streaming_fp("171.swim", S0, 0.5), 1500),
        Benchmark {
            name: "172.mgrid",
            suite: S0,
            loops: vec![spec(
                "resid",
                kernels::stencil3("resid"),
                T::Uniform { lo: 300, hi: 600 },
                6,
                StreamMode::Progressive,
            )],
            pipelined_fraction: 0.5,
        },
        with_setup_loop(fp_symbolic("173.applu", S0, 4096, 0.1), 1500),
        Benchmark::flat("175.vpr", S0),
        Benchmark::flat("176.gcc", S0),
        mesa(),
        with_setup_loop(fp_symbolic("178.galgel", S0, 2048, 0.1), 1500),
        Benchmark {
            name: "179.art",
            suite: S0,
            loops: vec![
                spec(
                    "match",
                    kernels::gather_update("match", DataClass::Fp, 48 << 20),
                    T::Uniform { lo: 400, hi: 800 },
                    12,
                    StreamMode::Progressive,
                ),
                spec(
                    "simtest",
                    kernels::symbolic_walk("simtest", 4096),
                    T::Uniform { lo: 400, hi: 800 },
                    8,
                    StreamMode::Progressive,
                ),
            ],
            pipelined_fraction: 0.28,
        },
        mcf("181.mcf", S0),
        with_setup_loop(fp_gather("183.equake", S0, 20 << 20, 0.18), 1500),
        Benchmark::flat("186.crafty", S0),
        with_setup_loop(fp_gather("187.facerec", S0, 16 << 20, 0.15), 1500),
        with_setup_loop(fp_pointer_array("188.ammp", S0, 24 << 20, 0.15), 1500),
        with_setup_loop(fp_symbolic("189.lucas", S0, 8192, 0.1), 1500),
        with_setup_loop(fp_gather("191.fma3d", S0, 12 << 20, 0.1), 1500),
        Benchmark::flat("197.parser", S0),
        Benchmark {
            name: "200.sixtrack",
            suite: S0,
            loops: vec![
                spec(
                    "track",
                    kernels::pointer_array_walk("track", 28 << 20),
                    T::Uniform { lo: 300, hi: 600 },
                    12,
                    StreamMode::Progressive,
                ),
                spec(
                    "thin6d",
                    kernels::symbolic_walk("thin6d", 8192),
                    T::Uniform { lo: 300, hi: 600 },
                    8,
                    StreamMode::Progressive,
                ),
            ],
            pipelined_fraction: 0.3,
        },
        Benchmark::flat("252.eon", S0),
        Benchmark::flat("253.perlbmk", S0),
        Benchmark::flat("254.gap", S0),
        Benchmark::flat("255.vortex", S0),
        warm_int("256.bzip2", S0, 150, 0.2),
        Benchmark {
            name: "300.twolf",
            suite: S0,
            loops: vec![spec(
                "netlist-scan",
                kernels::reduction_int("netlist-scan", 4),
                T::Uniform { lo: 8, hi: 16 },
                300,
                StreamMode::Restart,
            )
            .with_static_estimate(96.0)],
            pipelined_fraction: 0.05,
        },
        with_setup_loop(fp_symbolic("301.apsi", S0, 2048, 0.1), 1500),
    ]
}

/// Looks up a benchmark by name in either suite.
pub fn find_benchmark(name: &str) -> Option<Benchmark> {
    cpu2006()
        .into_iter()
        .chain(cpu2000())
        .find(|b| b.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_the_paper_charts() {
        assert_eq!(cpu2006().len(), 29);
        assert_eq!(cpu2000().len(), 26);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = cpu2006()
            .iter()
            .chain(cpu2000().iter())
            .map(|b| b.name)
            .collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn mcf_models_the_sec44_loop() {
        let b = find_benchmark("429.mcf").unwrap();
        let rp = &b.loops[0];
        assert!(rp.name.contains("refresh_potential"));
        let mean = rp.ref_trips.mean();
        assert!((2.0..2.6).contains(&mean), "trip ≈ 2.3, got {mean}");
    }

    #[test]
    fn mesa_has_train_ref_mismatch() {
        let b = find_benchmark("177.mesa").unwrap();
        let l = &b.loops[0];
        assert_eq!(l.ref_trips.mean(), 8.0);
        assert_eq!(l.train_trips.mean(), 154.0);
    }

    #[test]
    fn gobmk_static_estimate_is_optimistic() {
        let b = find_benchmark("445.gobmk").unwrap();
        let l = &b.loops[0];
        assert!(l.static_trip_estimate > 10.0 * l.ref_trips.mean());
    }

    #[test]
    fn every_loop_builds_and_fractions_are_sane() {
        for b in cpu2006().iter().chain(cpu2000().iter()) {
            assert!((0.0..=1.0).contains(&b.pipelined_fraction), "{}", b.name);
            for l in &b.loops {
                assert!(!l.loop_ir.insts().is_empty(), "{}/{}", b.name, l.name);
                assert!(l.entries > 0);
            }
            if b.loops.is_empty() {
                assert_eq!(b.pipelined_fraction, 0.0, "{}", b.name);
            }
        }
    }
}
