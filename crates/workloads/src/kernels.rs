//! The loop-kernel library the synthetic benchmarks are assembled from.
//!
//! Every kernel is a small, realistic innermost loop expressed in
//! [`ltsp_ir`]. Footprints are chosen relative to the modeled cache sizes
//! (16 KB L1D / 256 KB L2 / 12 MB L3): a kernel whose region fits a level
//! hits there once warm; streaming kernels in progressive mode never
//! re-touch lines and miss to memory at line-crossing rate.

use ltsp_ir::{DataClass, LoopBuilder, LoopIr};

/// Distinct, far-apart base addresses per logical array.
fn base(slot: u64) -> u64 {
    0x10_0000 + slot * 0x800_0000
}

/// `sum += a[i]` over a data class and stride (in bytes).
pub fn stream_sum(name: &str, data: DataClass, stride: i64) -> LoopIr {
    let mut b = LoopBuilder::new(name);
    let bytes = if data == DataClass::Fp { 8 } else { 4 };
    let a = b.affine_ref("a[i]", data, base(0), stride, bytes);
    let v = b.load(a);
    match data {
        DataClass::Fp => {
            let _ = b.fadd_reduce(v);
        }
        DataClass::Int => {
            let _ = b.add_reduce(v);
        }
    }
    b.build().expect("stream_sum is well-formed")
}

/// `y[i] = alpha * x[i] + y[i]` (BLAS saxpy): two FP streams, one store.
pub fn saxpy(name: &str) -> LoopIr {
    let mut b = LoopBuilder::new(name);
    let x = b.affine_ref("x[i]", DataClass::Fp, base(0), 8, 8);
    let y = b.affine_ref("y[i]", DataClass::Fp, base(1), 8, 8);
    let alpha = b.live_in_fr("alpha");
    let vx = b.load(x);
    let vy = b.load(y);
    let r = b.fma(alpha, vx, vy);
    b.store(y, r);
    b.build().expect("saxpy is well-formed")
}

/// `a[i] = b[i] + s * c[i]` (STREAM triad): three streams.
pub fn triad(name: &str) -> LoopIr {
    let mut b = LoopBuilder::new(name);
    let bb = b.affine_ref("b[i]", DataClass::Fp, base(0), 8, 8);
    let cc = b.affine_ref("c[i]", DataClass::Fp, base(1), 8, 8);
    let aa = b.affine_ref("a[i]", DataClass::Fp, base(2), 8, 8);
    let s = b.live_in_fr("s");
    let vb = b.load(bb);
    let vc = b.load(cc);
    let r = b.fma(s, vc, vb);
    b.store(aa, r);
    b.build().expect("triad is well-formed")
}

/// Three-point stencil `y[i] = c0*x[i-1] + c1*x[i] + c2*x[i+1]`; the three
/// x streams share lines (leading-reference dedup exercises here).
pub fn stencil3(name: &str) -> LoopIr {
    let mut b = LoopBuilder::new(name);
    let xm = b.affine_ref("x[i-1]", DataClass::Fp, base(0), 8, 8);
    let x0 = b.affine_ref("x[i]", DataClass::Fp, base(0) + 8, 8, 8);
    let xp = b.affine_ref("x[i+1]", DataClass::Fp, base(0) + 16, 8, 8);
    let y = b.affine_ref("y[i]", DataClass::Fp, base(1), 8, 8);
    let c0 = b.live_in_fr("c0");
    let c1 = b.live_in_fr("c1");
    let c2 = b.live_in_fr("c2");
    let vm = b.load(xm);
    let v0 = b.load(x0);
    let vp = b.load(xp);
    let t0 = b.fmul(c0, vm);
    let t1 = b.fma(c1, v0, t0);
    let t2 = b.fma(c2, vp, t1);
    b.store(y, t2);
    b.build().expect("stencil3 is well-formed")
}

/// `sum += a[b[i]]`: an affine index stream driving a gather over
/// `region_bytes` of data.
pub fn gather_update(name: &str, data: DataClass, region_bytes: u64) -> LoopIr {
    let mut b = LoopBuilder::new(name);
    let idx = b.affine_ref("b[i]", DataClass::Int, base(0), 4, 4);
    let elem = if data == DataClass::Fp { 8 } else { 4 };
    let tgt = b.gather_ref("a[b[i]]", data, idx, base(1), elem, region_bytes);
    let vi = b.load(idx);
    let vt = b.load(tgt);
    match data {
        DataClass::Fp => {
            let _ = b.fadd_reduce(vt);
        }
        DataClass::Int => {
            let s = b.add_reduce(vt);
            let _ = (vi, s);
        }
    }
    b.build().expect("gather_update is well-formed")
}

/// The 429.mcf `refresh_potential()` loop of the paper's Sec. 4.4:
///
/// ```c
/// while (node) {
///     node->potential = node->basic_arc->cost + node->pred->potential;
///     node = node->child;
/// }
/// ```
///
/// The chase (`node->child`) is a recurrence and cannot be prefetched; the
/// `basic_arc->cost` and `pred->potential` indirect loads are delinquent
/// (up to ~100-cycle latencies) but have slack — the paper's prime
/// candidates for latency-tolerant scheduling.
pub fn mcf_refresh(name: &str, region_bytes: u64) -> LoopIr {
    let mut b = LoopBuilder::new(name);
    let node = b.chase_ref("node->child", base(0), 64, region_bytes, 0.15);
    // On-node fields (same line as the node).
    let orientation = b.deref_ref(
        "node->orientation",
        DataClass::Int,
        node,
        0,
        region_bytes,
        4,
    );
    // Far pointers: basic_arc and pred live in other regions.
    let basic_arc_cost = b.deref_ref(
        "node->basic_arc->cost",
        DataClass::Int,
        node,
        128,
        region_bytes,
        8,
    );
    let pred_potential = b.deref_ref(
        "node->pred->potential",
        DataClass::Int,
        node,
        192,
        region_bytes,
        8,
    );
    let potential = b.deref_ref("node->potential", DataClass::Int, node, 16, region_bytes, 8);

    let _vnode = b.load(node);
    let vori = b.load(orientation);
    let vcost = b.load(basic_arc_cost);
    let vpred = b.load(pred_potential);
    let sum = b.add(vcost, vpred);
    let guard = b.cmp(vori, sum);
    let _ = guard;
    b.store(potential, sum);
    b.build().expect("mcf_refresh is well-formed")
}

/// The Sec. 4.4 loop with its *actual* control flow, if-converted: the
/// paper's source has `if (node->orientation == UP) ... else ...`; both
/// sides compute a potential and the join stores it. Exercises qualifying
/// predicates end to end (builder -> DDG -> schedule -> executor).
pub fn mcf_refresh_predicated(name: &str, region_bytes: u64) -> LoopIr {
    let mut b = LoopBuilder::new(name);
    let node = b.chase_ref("node->child", base(0), 64, region_bytes, 0.15);
    let orientation = b.deref_ref(
        "node->orientation",
        DataClass::Int,
        node,
        0,
        region_bytes,
        4,
    );
    let basic_arc_cost = b.deref_ref(
        "node->basic_arc->cost",
        DataClass::Int,
        node,
        128,
        region_bytes,
        8,
    );
    let pred_potential = b.deref_ref(
        "node->pred->potential",
        DataClass::Int,
        node,
        192,
        region_bytes,
        8,
    );
    let potential = b.deref_ref("node->potential", DataClass::Int, node, 16, region_bytes, 8);

    let _vnode = b.load(node);
    let vori = b.load(orientation);
    let up = b.live_in_gr("UP");
    let is_up = b.cmp(vori, up);

    // then: potential = basic_arc->cost + pred->potential — the
    // delinquent indirect loads fire only for UP nodes.
    b.begin_if(is_up);
    let vcost = b.load(basic_arc_cost);
    let vpred = b.load(pred_potential);
    let sum_up = b.add(vcost, vpred);
    // else: the paper elides the other branch ("..."); model it as a
    // cheap register-only computation.
    b.begin_else();
    let sum_down = b.sub(vori, up);
    b.end_if();

    let result = b.sel(is_up, sum_up, sum_down);
    b.store(potential, result);
    b.build().expect("mcf_refresh_predicated is well-formed")
}

/// The 464.h264ref `FastFullPelBlockMotionSearch()`-style loop: integer
/// loads over a small, re-visited search window (L1-resident when warm)
/// with a SAD-style accumulation. Low trip count, high entry rate.
pub fn motion_search(name: &str) -> LoopIr {
    let mut b = LoopBuilder::new(name);
    let cur = b.affine_ref("cur[i]", DataClass::Int, base(0), 4, 4);
    let refw = b.affine_ref("ref[i]", DataClass::Int, base(0) + 8192, 4, 4);
    let vc = b.load(cur);
    let vr = b.load(refw);
    let d = b.sub(vc, vr);
    let sq = b.mul(d, d);
    let _sad = b.add_reduce(sq);
    b.build().expect("motion_search is well-formed")
}

/// The 177.mesa `gl_write_texture_span()`-style loop: FP texel loads and
/// blending over a modest, warm working set. Prefetchable, so the HLO
/// assigns no hints — the loss this loop causes in headroom experiments
/// disappears under HLO-directed hints.
pub fn texture_span(name: &str) -> LoopIr {
    let mut b = LoopBuilder::new(name);
    let tex = b.affine_ref("texel[i]", DataClass::Fp, base(0), 8, 8);
    let span = b.affine_ref("span[i]", DataClass::Fp, base(1), 8, 8);
    let out = b.affine_ref("out[i]", DataClass::Fp, base(2), 8, 8);
    let blend = b.live_in_fr("blend");
    let vt = b.load(tex);
    let vs = b.load(span);
    let mixed = b.fma(blend, vt, vs);
    b.store(out, mixed);
    b.build().expect("texture_span is well-formed")
}

/// 445.gobmk-style board scan: indirect integer references into a small
/// (`region_bytes`, typically cache-resident) region — runtime latencies
/// are low even though the prefetcher marks them (heuristic 2b), and trip
/// counts are low. The worst case for hint-driven boosting without PGO.
pub fn hash_walk(name: &str, region_bytes: u64) -> LoopIr {
    let mut b = LoopBuilder::new(name);
    let idx = b.affine_ref("moves[i]", DataClass::Int, base(0), 4, 4);
    let board = b.gather_ref(
        "board[moves[i]]",
        DataClass::Int,
        idx,
        base(1),
        4,
        region_bytes,
    );
    let vi = b.load(idx);
    let vb = b.load(board);
    let s = b.add(vb, vi);
    let _acc = b.add_reduce(s);
    b.build().expect("hash_walk is well-formed")
}

/// Column walk with a symbolic stride (`a[i*n]`): the prefetcher clamps
/// the distance (TLB heuristic 2a) and marks the load.
pub fn symbolic_walk(name: &str, typical_stride: i64) -> LoopIr {
    let mut b = LoopBuilder::new(name);
    let a = b.symbolic_ref("a[i*n]", DataClass::Fp, base(0), typical_stride, 8);
    let s = b.live_in_fr("s");
    let v = b.load(a);
    let r = b.fmul(v, s);
    let _acc = b.fadd_reduce(r);
    b.build().expect("symbolic_walk is well-formed")
}

/// Walk of a pointer array: `p[i]->field` — the pointer stream prefetches
/// fine, the target gets a reduced distance (2b).
pub fn pointer_array_walk(name: &str, region_bytes: u64) -> LoopIr {
    let mut b = LoopBuilder::new(name);
    let parr = b.affine_ref("p[i]", DataClass::Int, base(0), 8, 8);
    let fld = b.deref_ref("p[i]->val", DataClass::Fp, parr, 512, region_bytes, 8);
    let _vp = b.load(parr);
    let vf = b.load(fld);
    let _acc = b.fadd_reduce(vf);
    b.build().expect("pointer_array_walk is well-formed")
}

/// FP-bound kernel with few memory references: little to gain from
/// latency scheduling (compute-dominated benchmarks).
pub fn compute_heavy(name: &str) -> LoopIr {
    let mut b = LoopBuilder::new(name);
    let x = b.affine_ref("x[i]", DataClass::Fp, base(0), 8, 8);
    let c0 = b.live_in_fr("c0");
    let c1 = b.live_in_fr("c1");
    let v = b.load(x);
    let t0 = b.fma(c0, v, c1);
    let t1 = b.fmul(t0, t0);
    let t2 = b.fma(c1, t1, t0);
    let t3 = b.fmul(t2, t1);
    let t4 = b.fma(c0, t3, t2);
    let y = b.affine_ref("y[i]", DataClass::Fp, base(1), 8, 8);
    b.store(y, t4);
    b.build().expect("compute_heavy is well-formed")
}

/// First-order IIR filter through memory: `a[i] = c·a[i-1] + b[i]`,
/// carried by a store→load memory-flow dependence the front end declares.
/// Its recurrence (store + FP-load + fma) far exceeds the Resource II —
/// the case the paper's Sec. 3.3 recurrence reductions (data speculation)
/// exist for.
pub fn memory_recurrence(name: &str) -> LoopIr {
    use ltsp_ir::MemDepKind;
    let mut b = LoopBuilder::new(name);
    let a_prev = b.affine_ref("a[i-1]", DataClass::Fp, base(0), 8, 8);
    let bb = b.affine_ref("b[i]", DataClass::Fp, base(1), 8, 8);
    let a_out = b.affine_ref("a[i]", DataClass::Fp, base(0) + 8, 8, 8);
    let c = b.live_in_fr("c");
    let va = b.load(a_prev);
    let vb = b.load(bb);
    let r = b.fma(c, va, vb);
    let st = b.store(a_out, r);
    // a[i] written this iteration is a[i-1] next iteration.
    b.mem_dep(st, ltsp_ir::InstId(0), MemDepKind::Flow, 1);
    b.build().expect("memory_recurrence is well-formed")
}

/// Integer reduction over a byte-strided stream (bzip2/gzip-style scan).
pub fn reduction_int(name: &str, stride: i64) -> LoopIr {
    let mut b = LoopBuilder::new(name);
    let a = b.affine_ref("buf[i]", DataClass::Int, base(0), stride, 4);
    let v = b.load(a);
    let m = b.and(v, v);
    let _acc = b.add_reduce(m);
    b.build().expect("reduction_int is well-formed")
}

/// A deterministic scheduling-heavy kernel: `streams` FP streams, each
/// feeding a long dependent fma/fmul chain of the given `depth`, paired
/// with matching integer streams. Dozens to hundreds of instructions and
/// high register pressure make the modulo scheduler work for a living —
/// the workload class where compile latency is dominated by the MRT and
/// scheduler phases rather than by parsing or HLO.
///
/// `loadgen --synthetic` serves `scheduling_heavy(&format!("syn{i}"), 3,
/// 9 + i % 5)`; the compile-phases KPI harness scales `streams`/`depth`
/// up to measure the scheduler hot paths at realistic loop sizes.
pub fn scheduling_heavy(name: &str, streams: usize, depth: usize) -> LoopIr {
    let mut b = LoopBuilder::new(name);
    let c0 = b.live_in_fr("c0");
    let c1 = b.live_in_fr("c1");
    let k0 = b.live_in_gr("k0");
    for s in 0..streams {
        let su = s as u64 + 1;
        let x = b.affine_ref(&format!("x{s}[i]"), DataClass::Fp, su << 24, 8, 8);
        let v = b.load(x);
        let mut t = b.fma(c0, v, c1);
        for _ in 0..depth {
            t = b.fma(c0, t, c1);
            t = b.fmul(t, t);
        }
        let y = b.affine_ref(
            &format!("y{s}[i]"),
            DataClass::Fp,
            (su << 24) + (1 << 20),
            8,
            8,
        );
        b.store(y, t);
        // A matching integer stream keeps both register files and both
        // unit classes busy without tripping the rotating-FR supply.
        let p = b.affine_ref(
            &format!("p{s}[i]"),
            DataClass::Int,
            (su << 28) | 1 << 12,
            8,
            8,
        );
        let w = b.load(p);
        let mut u = b.add(w, k0);
        for _ in 0..depth {
            u = b.xor(u, k0);
            u = b.add(u, u);
        }
        let q = b.affine_ref(
            &format!("q{s}[i]"),
            DataClass::Int,
            (su << 28) | 1 << 16,
            8,
            8,
        );
        b.store(q, u);
    }
    b.build().expect("scheduling_heavy is well-formed")
}

/// The canonical kernel library: every kernel at the parameterization the
/// committed `loops/` corpus uses (regenerated by `examples/dump_loops`).
/// One list feeds the corpus dump, the oracle-gap experiment and the
/// corpus tests, so they cannot drift apart.
pub fn kernel_library() -> Vec<(&'static str, LoopIr)> {
    vec![
        ("stream_fp", stream_sum("stream_fp", DataClass::Fp, 8)),
        ("stream_int", stream_sum("stream_int", DataClass::Int, 256)),
        ("saxpy", saxpy("saxpy")),
        ("triad", triad("triad")),
        ("stencil3", stencil3("stencil3")),
        (
            "gather_fp",
            gather_update("gather_fp", DataClass::Fp, 1 << 24),
        ),
        (
            "gather_int",
            gather_update("gather_int", DataClass::Int, 1 << 22),
        ),
        ("mcf_refresh", mcf_refresh("mcf_refresh", 1 << 25)),
        (
            "mcf_refresh_predicated",
            mcf_refresh_predicated("mcf_refresh_predicated", 1 << 25),
        ),
        ("motion_search", motion_search("motion_search")),
        ("texture_span", texture_span("texture_span")),
        ("hash_walk", hash_walk("hash_walk", 1 << 17)),
        ("symbolic_walk", symbolic_walk("symbolic_walk", 4096)),
        (
            "pointer_array",
            pointer_array_walk("pointer_array", 1 << 24),
        ),
        ("compute_heavy", compute_heavy("compute_heavy")),
        ("reduction_int", reduction_int("reduction_int", 4)),
        ("memory_recurrence", memory_recurrence("memory_recurrence")),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_names_are_unique_and_match_loop_names() {
        let lib = kernel_library();
        assert_eq!(lib.len(), 17);
        for (i, (name, lp)) in lib.iter().enumerate() {
            assert_eq!(*name, lp.name(), "entry {i}");
            assert!(
                lib[..i].iter().all(|(n, _)| n != name),
                "duplicate kernel name {name}"
            );
        }
    }

    #[test]
    fn all_kernels_build() {
        let kernels: Vec<LoopIr> = vec![
            stream_sum("s", DataClass::Fp, 8),
            stream_sum("si", DataClass::Int, 4),
            saxpy("saxpy"),
            triad("triad"),
            stencil3("stencil"),
            gather_update("g", DataClass::Fp, 1 << 24),
            mcf_refresh("mcf", 1 << 25),
            motion_search("h264"),
            texture_span("mesa"),
            hash_walk("gobmk", 8 * 1024),
            symbolic_walk("sym", 4096),
            pointer_array_walk("pa", 1 << 24),
            compute_heavy("ch"),
            reduction_int("ri", 1),
        ];
        for k in &kernels {
            assert!(!k.insts().is_empty(), "{} has a body", k.name());
        }
    }

    #[test]
    fn mcf_has_chase_and_derefs() {
        let lp = mcf_refresh("mcf", 1 << 25);
        let kinds: Vec<&str> = lp
            .memrefs()
            .iter()
            .map(|m| m.pattern().kind_name())
            .collect();
        assert!(kinds.contains(&"chase"));
        assert!(kinds.iter().filter(|&&k| k == "deref").count() >= 3);
    }

    #[test]
    fn stencil_refs_share_lines() {
        let lp = stencil3("st");
        // Bases 0, +8, +16: all within one 64B line at iteration 0.
        let bases: Vec<u64> = lp
            .memrefs()
            .iter()
            .filter_map(|m| match m.pattern() {
                ltsp_ir::AccessPattern::Affine { base, stride: 8 } => Some(*base),
                _ => None,
            })
            .collect();
        assert!(bases.len() >= 4);
        assert!(bases[1] - bases[0] < 64);
    }
}
