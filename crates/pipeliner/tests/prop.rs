//! Property-based tests of modulo scheduling and register allocation.

use proptest::prelude::*;

use ltsp_ddg::Ddg;
use ltsp_ir::{LatencyHint, RegClass};
use ltsp_machine::{LatencyQuery, MachineModel};
use ltsp_pipeliner::{
    acyclic_schedule, allocate_rotating, pipeline_loop, ModuloScheduler, PipelineOptions,
};
use ltsp_workloads::random_loop;

fn base_ddg(lp: &ltsp_ir::LoopIr, m: &MachineModel) -> Ddg {
    Ddg::build_with_load_floor(lp, m, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whenever the scheduler claims success at an II, every dependence
    /// edge and the reservation table are honored (the scheduler asserts
    /// dependences internally; resources are re-checked here).
    #[test]
    fn successful_schedules_are_valid(seed in 0u64..20_000) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let ddg = base_ddg(&lp, &m);
        let min_ii = m.res_mii(&lp).max(ddg.rec_mii());
        let sch = ModuloScheduler::new(&lp, &m, &ddg);
        let Ok(s) = sch.schedule_at(min_ii, 8) else { return Ok(()); };

        // Dependences.
        for e in ddg.edges() {
            prop_assert!(
                s.time(e.from) + i64::from(e.latency)
                    <= s.time(e.to) + i64::from(min_ii) * i64::from(e.omega)
            );
        }
        // Resources: count per row and class.
        let res = m.issue();
        for row in s.rows() {
            let mut mem = 0u32;
            let mut fp = 0u32;
            let mut alu = 0u32;
            for slot in &row {
                match lp.inst(slot.inst).unit_class() {
                    ltsp_ir::UnitClass::M => mem += 1,
                    ltsp_ir::UnitClass::F => fp += 1,
                    ltsp_ir::UnitClass::I | ltsp_ir::UnitClass::A => alu += 1,
                    ltsp_ir::UnitClass::B => {}
                }
            }
            prop_assert!(mem <= res.m, "M row overflow");
            prop_assert!(fp <= res.f, "F row overflow");
            prop_assert!(mem + alu <= res.m + res.i, "shared M/I overflow");
        }
    }

    /// Escalating the II can only shrink (or keep) register demand —
    /// the fallback ladder's premise.
    #[test]
    fn register_demand_shrinks_with_ii(seed in 0u64..20_000) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let ddg = base_ddg(&lp, &m);
        let min_ii = m.res_mii(&lp).max(ddg.rec_mii());
        let sch = ModuloScheduler::new(&lp, &m, &ddg);
        let (Ok(s1), Ok(s2)) = (sch.schedule_at(min_ii, 8), sch.schedule_at(min_ii + 4, 8))
        else { return Ok(()); };
        let (Ok(a1), Ok(a2)) = (
            allocate_rotating(&lp, &s1, &m),
            allocate_rotating(&lp, &s2, &m),
        ) else { return Ok(()); };
        // Stage predicates shrink with fewer stages; value lifetimes only
        // get cheaper per II. Compare predicate usage (monotone by
        // construction) and total rotating demand.
        prop_assert!(a2.stages <= a1.stages);
        let total1 = a1.rotating(RegClass::Gr) + a1.rotating(RegClass::Fr);
        let total2 = a2.rotating(RegClass::Gr) + a2.rotating(RegClass::Fr);
        prop_assert!(total2 <= total1 + 2, "demand grew materially with II");
    }

    /// The acyclic fallback schedule is always single-stage and respects
    /// same-iteration dependences.
    #[test]
    fn acyclic_fallback_is_sound(seed in 0u64..20_000) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let ddg = base_ddg(&lp, &m);
        let s = acyclic_schedule(&lp, &m, &ddg);
        prop_assert_eq!(s.stage_count(), 1);
        for e in ddg.edges() {
            if e.omega == 0 {
                prop_assert!(s.time(e.from) + i64::from(e.latency) <= s.time(e.to));
            }
        }
    }

    /// The full driver always yields an executable kernel, and its II
    /// never beats the Min II bounds.
    #[test]
    fn driver_output_within_bounds(seed in 0u64..20_000, hint_l3 in any::<bool>()) {
        let m = MachineModel::itanium2();
        let lp = random_loop(seed);
        let hint = move |_| if hint_l3 { Some(LatencyHint::L3) } else { None };
        let Ok(p) = pipeline_loop(&lp, &m, &hint, &PipelineOptions::default())
        else { return Ok(()); };
        prop_assert!(p.schedule.ii() >= p.stats.min_ii);
        prop_assert!(p.schedule.stage_count() >= 1);
        prop_assert_eq!(
            p.stats.min_ii,
            p.stats.res_mii.max(p.stats.rec_mii)
        );
        // Boost accounting is consistent with the classification.
        let boosted = lp
            .insts()
            .iter()
            .filter(|i| {
                i.op().is_load()
                    && matches!(p.classification.query(i.id()), LatencyQuery::Hinted(_))
            })
            .count();
        prop_assert_eq!(boosted, p.stats.boosted_loads);
    }
}
