//! The modulo reservation table.
//!
//! The scheduler probes `II` consecutive slots per operation, so
//! [`Mrt::fits`] is the hottest query in the pipeliner. Each row keeps a
//! per-slot-class occupancy counter (`[M, I, F, B]`) next to its
//! occupant list: `fits`/`place` are O(1) in the row size, while the
//! occupant list preserves placement order for eviction (the most
//! recently placed occupant is the lowest-priority one so far) and
//! records each occupant's *declared* unit class so forced placement can
//! tell relocatable A-class occupants from fixed-class ones.

use ltsp_ir::{InstId, UnitClass};
use ltsp_machine::IssueResources;

/// Which physical slot class an instruction actually occupies in its row
/// (A-class ops land on either an I or an M slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TakenSlot {
    M,
    I,
    F,
    B,
}

impl TakenSlot {
    fn idx(self) -> usize {
        match self {
            TakenSlot::M => 0,
            TakenSlot::I => 1,
            TakenSlot::F => 2,
            TakenSlot::B => 3,
        }
    }
}

/// One placed instruction: which slot it occupies and the unit class it
/// was declared with (an `A`-declared occupant is relocatable — it can
/// sit on either an I or an M slot).
#[derive(Debug, Clone, Copy)]
struct Occupant {
    inst: InstId,
    slot: TakenSlot,
    declared: UnitClass,
}

/// Modulo reservation table: tracks, for each of the II rows, which
/// instructions occupy which issue slots. Placement wraps schedule time
/// modulo II.
#[derive(Debug, Clone)]
pub struct Mrt {
    ii: u32,
    res: IssueResources,
    rows: Vec<Vec<Occupant>>,
    /// Per-row taken-slot counters indexed by [`TakenSlot::idx`]
    /// (`[M, I, F, B]`): `fits`/`place` never rescan the occupant list.
    counts: Vec<[u32; 4]>,
}

impl Mrt {
    /// Creates an empty table for the given II and issue resources.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(ii: u32, res: IssueResources) -> Self {
        assert!(ii > 0, "II must be positive");
        Mrt {
            ii,
            res,
            rows: vec![Vec::new(); ii as usize],
            counts: vec![[0; 4]; ii as usize],
        }
    }

    /// Clears the table and re-shapes it for a new II, reusing the row
    /// allocations. Equivalent to `*self = Mrt::new(ii, res)` without
    /// the reallocation — used by the scheduler's II escalation ladder.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn reset(&mut self, ii: u32, res: IssueResources) {
        assert!(ii > 0, "II must be positive");
        self.ii = ii;
        self.res = res;
        for row in &mut self.rows {
            row.clear();
        }
        self.rows.resize_with(ii as usize, Vec::new);
        self.counts.clear();
        self.counts.resize(ii as usize, [0; 4]);
    }

    /// The table's II.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    fn row_of(&self, time: i64) -> usize {
        (time.rem_euclid(i64::from(self.ii))) as usize
    }

    fn free_in_row(&self, row: usize, class: UnitClass) -> Option<TakenSlot> {
        let [m, i, f, b] = self.counts[row];
        match class {
            UnitClass::M => (m < self.res.m).then_some(TakenSlot::M),
            UnitClass::I => (i < self.res.i).then_some(TakenSlot::I),
            UnitClass::F => (f < self.res.f).then_some(TakenSlot::F),
            UnitClass::B => (b < self.res.b).then_some(TakenSlot::B),
            UnitClass::A => {
                if i < self.res.i {
                    Some(TakenSlot::I)
                } else if m < self.res.m {
                    Some(TakenSlot::M)
                } else {
                    None
                }
            }
        }
    }

    /// True if an instruction of `class` fits at `time` without eviction.
    pub fn fits(&self, time: i64, class: UnitClass) -> bool {
        self.free_in_row(self.row_of(time), class).is_some()
    }

    /// Places an instruction at `time`.
    ///
    /// Returns `true` on success; `false` if the row has no free compatible
    /// slot (use [`Mrt::place_forced`] to evict).
    pub fn place(&mut self, inst: InstId, time: i64, class: UnitClass) -> bool {
        let row = self.row_of(time);
        match self.free_in_row(row, class) {
            Some(slot) => {
                self.rows[row].push(Occupant {
                    inst,
                    slot,
                    declared: class,
                });
                self.counts[row][slot.idx()] += 1;
                true
            }
            None => false,
        }
    }

    /// Forces an instruction into the row at `time`, evicting an occupant
    /// if needed. Returns the evicted instruction, if any.
    ///
    /// For a fixed-class op, one occupant of that slot class is evicted.
    /// For an A-class op (both I and M full), a *relocatable* occupant —
    /// one declared A-class, on either an I or an M slot — is preferred:
    /// evicting it lets the iterative scheduler re-place it on whichever
    /// shared slot opens next, whereas evicting a fixed-class op when a
    /// relocatable one exists just thrashes fixed placements. Only when
    /// every shared-slot occupant is fixed-class does eviction fall back
    /// to the I slots (then M). Among candidates, the *most recently
    /// placed* occupant is evicted, which in the iterative scheduler
    /// corresponds to the lowest-priority one placed so far.
    pub fn place_forced(&mut self, inst: InstId, time: i64, class: UnitClass) -> Option<InstId> {
        if self.place(inst, time, class) {
            return None;
        }
        let row = self.row_of(time);
        let pos = match class {
            UnitClass::M => self.rindex_on_slot(row, TakenSlot::M),
            UnitClass::I => self.rindex_on_slot(row, TakenSlot::I),
            UnitClass::F => self.rindex_on_slot(row, TakenSlot::F),
            UnitClass::B => self.rindex_on_slot(row, TakenSlot::B),
            UnitClass::A => self.rows[row]
                .iter()
                .rposition(|o| o.declared == UnitClass::A)
                .or_else(|| self.rindex_on_slot(row, TakenSlot::I))
                .or_else(|| self.rindex_on_slot(row, TakenSlot::M)),
        }
        .expect("row reported full for this class, so an occupant exists");
        let victim = self.rows[row].remove(pos);
        self.counts[row][victim.slot.idx()] -= 1;
        self.rows[row].push(Occupant {
            inst,
            slot: victim.slot,
            declared: class,
        });
        self.counts[row][victim.slot.idx()] += 1;
        Some(victim.inst)
    }

    fn rindex_on_slot(&self, row: usize, slot: TakenSlot) -> Option<usize> {
        self.rows[row].iter().rposition(|o| o.slot == slot)
    }

    /// Removes an instruction from the row it occupies at `time`.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not in that row.
    pub fn remove(&mut self, inst: InstId, time: i64) {
        let row = self.row_of(time);
        let pos = self.rows[row]
            .iter()
            .position(|o| o.inst == inst)
            .expect("instruction must occupy the row it is removed from");
        let occ = self.rows[row].remove(pos);
        self.counts[row][occ.slot.idx()] -= 1;
    }

    /// Total occupied slots (for tests/statistics).
    pub fn occupancy(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res() -> IssueResources {
        IssueResources {
            m: 2,
            i: 2,
            f: 2,
            b: 1,
        }
    }

    #[test]
    fn wraps_modulo_ii() {
        let mut mrt = Mrt::new(2, res());
        assert!(mrt.place(InstId(0), 0, UnitClass::M));
        assert!(mrt.place(InstId(1), 2, UnitClass::M), "same row as time 0");
        assert!(
            !mrt.place(InstId(2), 4, UnitClass::M),
            "row 0 M slots now full"
        );
        assert!(mrt.place(InstId(2), 1, UnitClass::M), "row 1 free");
    }

    #[test]
    fn a_class_prefers_i_then_m() {
        let mut mrt = Mrt::new(1, res());
        assert!(mrt.place(InstId(0), 0, UnitClass::A));
        assert!(mrt.place(InstId(1), 0, UnitClass::A));
        assert!(mrt.place(InstId(2), 0, UnitClass::A));
        assert!(mrt.place(InstId(3), 0, UnitClass::A));
        assert!(!mrt.place(InstId(4), 0, UnitClass::A), "4 shared slots");
        // But a pure M op no longer fits either: A ops spilled into M.
        assert!(!mrt.fits(0, UnitClass::M));
    }

    #[test]
    fn forced_placement_evicts_most_recent() {
        let mut mrt = Mrt::new(1, res());
        assert!(mrt.place(InstId(0), 0, UnitClass::M));
        assert!(mrt.place(InstId(1), 0, UnitClass::M));
        let evicted = mrt.place_forced(InstId(2), 0, UnitClass::M);
        assert_eq!(evicted, Some(InstId(1)));
        assert_eq!(mrt.occupancy(), 2);
    }

    #[test]
    fn forced_placement_without_conflict_evicts_nothing() {
        let mut mrt = Mrt::new(1, res());
        let evicted = mrt.place_forced(InstId(0), 0, UnitClass::F);
        assert!(evicted.is_none());
    }

    #[test]
    fn forced_a_class_prefers_relocatable_victim() {
        // I slots hold fixed I-class ops; one M slot holds a relocatable
        // A-class op. Forcing another A-class op must evict the
        // relocatable occupant, not thrash a fixed I placement.
        let mut mrt = Mrt::new(1, res());
        assert!(mrt.place(InstId(0), 0, UnitClass::I));
        assert!(mrt.place(InstId(1), 0, UnitClass::I));
        assert!(mrt.place(InstId(2), 0, UnitClass::M));
        assert!(mrt.place(InstId(3), 0, UnitClass::A)); // lands on an M slot
        assert!(!mrt.fits(0, UnitClass::A));
        let evicted = mrt.place_forced(InstId(4), 0, UnitClass::A);
        assert_eq!(evicted, Some(InstId(3)), "relocatable occupant evicted");
        // The fixed I placements survived.
        assert!(!mrt.fits(0, UnitClass::I));
        mrt.remove(InstId(0), 0);
        assert!(mrt.fits(0, UnitClass::I));
    }

    #[test]
    fn forced_a_class_falls_back_to_i_then_m_when_all_fixed() {
        let mut mrt = Mrt::new(1, res());
        assert!(mrt.place(InstId(0), 0, UnitClass::I));
        assert!(mrt.place(InstId(1), 0, UnitClass::M));
        assert!(mrt.place(InstId(2), 0, UnitClass::M));
        assert!(mrt.place(InstId(3), 0, UnitClass::I));
        let evicted = mrt.place_forced(InstId(4), 0, UnitClass::A);
        assert_eq!(evicted, Some(InstId(3)), "most recent I occupant");
    }

    #[test]
    fn remove_frees_slot() {
        let mut mrt = Mrt::new(1, res());
        assert!(mrt.place(InstId(0), 0, UnitClass::F));
        assert!(mrt.place(InstId(1), 0, UnitClass::F));
        assert!(!mrt.fits(0, UnitClass::F));
        mrt.remove(InstId(0), 0);
        assert!(mrt.fits(0, UnitClass::F));
    }

    #[test]
    fn reset_reshapes_and_clears() {
        let mut mrt = Mrt::new(3, res());
        assert!(mrt.place(InstId(0), 0, UnitClass::M));
        assert!(mrt.place(InstId(1), 2, UnitClass::F));
        mrt.reset(5, res());
        assert_eq!(mrt.ii(), 5);
        assert_eq!(mrt.occupancy(), 0);
        for t in 0..5 {
            assert!(mrt.fits(t, UnitClass::M));
        }
        mrt.reset(2, res());
        assert_eq!(mrt.ii(), 2);
        assert!(mrt.place(InstId(0), 1, UnitClass::B));
        assert!(!mrt.fits(1, UnitClass::B));
    }

    #[test]
    #[should_panic(expected = "II must be positive")]
    fn zero_ii_panics() {
        let _ = Mrt::new(0, res());
    }

    #[test]
    fn negative_time_wraps() {
        let mut mrt = Mrt::new(3, res());
        assert!(mrt.place(InstId(0), -1, UnitClass::M)); // row 2
        assert!(mrt.place(InstId(1), 2, UnitClass::M));
        assert!(!mrt.place(InstId(2), 5, UnitClass::M), "row 2 full");
    }

    /// The pre-counter reference table: occupant lists only, with
    /// `free_in_row` recounting the whole row on every probe. Eviction
    /// semantics mirror [`Mrt::place_forced`] (relocatable-first for
    /// A-class) so the differential test pins exactly the counter
    /// optimization, not the eviction policy.
    struct RefMrt {
        ii: u32,
        res: IssueResources,
        rows: Vec<Vec<(InstId, TakenSlot, UnitClass)>>,
    }

    impl RefMrt {
        fn new(ii: u32, res: IssueResources) -> Self {
            RefMrt {
                ii,
                res,
                rows: vec![Vec::new(); ii as usize],
            }
        }

        fn row_of(&self, time: i64) -> usize {
            (time.rem_euclid(i64::from(self.ii))) as usize
        }

        fn free_in_row(&self, row: usize, class: UnitClass) -> Option<TakenSlot> {
            let (mut m, mut i, mut f, mut b) = (0u32, 0u32, 0u32, 0u32);
            for &(_, s, _) in &self.rows[row] {
                match s {
                    TakenSlot::M => m += 1,
                    TakenSlot::I => i += 1,
                    TakenSlot::F => f += 1,
                    TakenSlot::B => b += 1,
                }
            }
            match class {
                UnitClass::M => (m < self.res.m).then_some(TakenSlot::M),
                UnitClass::I => (i < self.res.i).then_some(TakenSlot::I),
                UnitClass::F => (f < self.res.f).then_some(TakenSlot::F),
                UnitClass::B => (b < self.res.b).then_some(TakenSlot::B),
                UnitClass::A => {
                    if i < self.res.i {
                        Some(TakenSlot::I)
                    } else if m < self.res.m {
                        Some(TakenSlot::M)
                    } else {
                        None
                    }
                }
            }
        }

        fn fits(&self, time: i64, class: UnitClass) -> bool {
            self.free_in_row(self.row_of(time), class).is_some()
        }

        fn place(&mut self, inst: InstId, time: i64, class: UnitClass) -> bool {
            let row = self.row_of(time);
            match self.free_in_row(row, class) {
                Some(slot) => {
                    self.rows[row].push((inst, slot, class));
                    true
                }
                None => false,
            }
        }

        fn place_forced(&mut self, inst: InstId, time: i64, class: UnitClass) -> Option<InstId> {
            if self.place(inst, time, class) {
                return None;
            }
            let row = self.row_of(time);
            let on_slot = |r: &[(InstId, TakenSlot, UnitClass)], slot| {
                r.iter().rposition(|&(_, s, _)| s == slot)
            };
            let pos = match class {
                UnitClass::M => on_slot(&self.rows[row], TakenSlot::M),
                UnitClass::I => on_slot(&self.rows[row], TakenSlot::I),
                UnitClass::F => on_slot(&self.rows[row], TakenSlot::F),
                UnitClass::B => on_slot(&self.rows[row], TakenSlot::B),
                UnitClass::A => self.rows[row]
                    .iter()
                    .rposition(|&(_, _, d)| d == UnitClass::A)
                    .or_else(|| on_slot(&self.rows[row], TakenSlot::I))
                    .or_else(|| on_slot(&self.rows[row], TakenSlot::M)),
            }
            .expect("occupant exists");
            let (victim, slot, _) = self.rows[row].remove(pos);
            self.rows[row].push((inst, slot, class));
            Some(victim)
        }

        fn remove(&mut self, inst: InstId, time: i64) {
            let row = self.row_of(time);
            let pos = self.rows[row]
                .iter()
                .position(|&(i, _, _)| i == inst)
                .expect("present");
            self.rows[row].remove(pos);
        }

        fn occupancy(&self) -> usize {
            self.rows.iter().map(Vec::len).sum()
        }
    }

    #[test]
    fn counter_table_matches_recounting_reference_on_random_traces() {
        use ltsp_ir::SplitMix64;
        let classes = [
            UnitClass::M,
            UnitClass::I,
            UnitClass::F,
            UnitClass::B,
            UnitClass::A,
        ];
        let mut rng = SplitMix64::new(0x4D52_5400);
        for case in 0..40 {
            let ii = 1 + rng.next_below(6) as u32;
            let mut fast = Mrt::new(ii, res());
            let mut reference = RefMrt::new(ii, res());
            // (inst, time) placements currently live, for remove ops.
            let mut live: Vec<(InstId, i64)> = Vec::new();
            let mut next_id = 0u32;
            for step in 0..400 {
                let time = rng.next_below(4 * u64::from(ii)) as i64 - i64::from(ii);
                let class = classes[rng.next_below(classes.len() as u64) as usize];
                match rng.next_below(4) {
                    0 => {
                        assert_eq!(
                            fast.fits(time, class),
                            reference.fits(time, class),
                            "case {case} step {step}: fits({time}, {class:?})"
                        );
                    }
                    1 => {
                        let id = InstId(next_id);
                        next_id += 1;
                        let a = fast.place(id, time, class);
                        let b = reference.place(id, time, class);
                        assert_eq!(a, b, "case {case} step {step}: place");
                        if a {
                            live.push((id, time));
                        }
                    }
                    2 => {
                        let id = InstId(next_id);
                        next_id += 1;
                        let a = fast.place_forced(id, time, class);
                        let b = reference.place_forced(id, time, class);
                        assert_eq!(a, b, "case {case} step {step}: forced victim");
                        live.push((id, time));
                        if let Some(v) = a {
                            live.retain(|&(i, _)| i != v);
                        }
                    }
                    _ => {
                        if !live.is_empty() {
                            let k = rng.next_below(live.len() as u64) as usize;
                            let (id, t) = live.swap_remove(k);
                            fast.remove(id, t);
                            reference.remove(id, t);
                        }
                    }
                }
                assert_eq!(
                    fast.occupancy(),
                    reference.occupancy(),
                    "case {case} step {step}: occupancy"
                );
            }
        }
    }
}
