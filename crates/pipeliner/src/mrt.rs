//! The modulo reservation table.

use ltsp_ir::{InstId, UnitClass};
use ltsp_machine::IssueResources;

/// Which physical slot class an instruction actually occupies in its row
/// (A-class ops land on either an I or an M slot).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TakenSlot {
    M,
    I,
    F,
    B,
}

/// Modulo reservation table: tracks, for each of the II rows, which
/// instructions occupy which issue slots. Placement wraps schedule time
/// modulo II.
#[derive(Debug, Clone)]
pub struct Mrt {
    ii: u32,
    res: IssueResources,
    rows: Vec<Vec<(InstId, TakenSlot)>>,
}

impl Mrt {
    /// Creates an empty table for the given II and issue resources.
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0`.
    pub fn new(ii: u32, res: IssueResources) -> Self {
        assert!(ii > 0, "II must be positive");
        Mrt {
            ii,
            res,
            rows: vec![Vec::new(); ii as usize],
        }
    }

    /// The table's II.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    fn row_of(&self, time: i64) -> usize {
        (time.rem_euclid(i64::from(self.ii))) as usize
    }

    fn free_in_row(&self, row: usize, class: UnitClass) -> Option<TakenSlot> {
        let mut m = 0u32;
        let mut i = 0u32;
        let mut f = 0u32;
        let mut b = 0u32;
        for &(_, s) in &self.rows[row] {
            match s {
                TakenSlot::M => m += 1,
                TakenSlot::I => i += 1,
                TakenSlot::F => f += 1,
                TakenSlot::B => b += 1,
            }
        }
        match class {
            UnitClass::M => (m < self.res.m).then_some(TakenSlot::M),
            UnitClass::I => (i < self.res.i).then_some(TakenSlot::I),
            UnitClass::F => (f < self.res.f).then_some(TakenSlot::F),
            UnitClass::B => (b < self.res.b).then_some(TakenSlot::B),
            UnitClass::A => {
                if i < self.res.i {
                    Some(TakenSlot::I)
                } else if m < self.res.m {
                    Some(TakenSlot::M)
                } else {
                    None
                }
            }
        }
    }

    /// True if an instruction of `class` fits at `time` without eviction.
    pub fn fits(&self, time: i64, class: UnitClass) -> bool {
        self.free_in_row(self.row_of(time), class).is_some()
    }

    /// Places an instruction at `time`.
    ///
    /// Returns `true` on success; `false` if the row has no free compatible
    /// slot (use [`Mrt::place_forced`] to evict).
    pub fn place(&mut self, inst: InstId, time: i64, class: UnitClass) -> bool {
        let row = self.row_of(time);
        match self.free_in_row(row, class) {
            Some(slot) => {
                self.rows[row].push((inst, slot));
                true
            }
            None => false,
        }
    }

    /// Forces an instruction into the row at `time`, evicting occupants as
    /// needed. Returns the evicted instructions.
    ///
    /// For a fixed-class op, one occupant of that class is evicted. For an
    /// A-class op, an occupant is taken from the I slots if any, otherwise
    /// from the M slots. The *most recently placed* occupant is evicted,
    /// which in the iterative scheduler corresponds to the lowest-priority
    /// one placed so far.
    pub fn place_forced(&mut self, inst: InstId, time: i64, class: UnitClass) -> Vec<InstId> {
        if self.place(inst, time, class) {
            return Vec::new();
        }
        let row = self.row_of(time);
        let victim_class = match class {
            UnitClass::M => TakenSlot::M,
            UnitClass::I => TakenSlot::I,
            UnitClass::F => TakenSlot::F,
            UnitClass::B => TakenSlot::B,
            UnitClass::A => {
                // Both I and M are full (place() failed). Prefer evicting
                // from I to keep M slots for memory ops.
                TakenSlot::I
            }
        };
        let pos = self.rows[row]
            .iter()
            .rposition(|&(_, s)| s == victim_class)
            .expect("row reported full for this class, so an occupant exists");
        let (victim, slot) = self.rows[row].remove(pos);
        self.rows[row].push((inst, slot));
        vec![victim]
    }

    /// Removes an instruction from the row it occupies at `time`.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not in that row.
    pub fn remove(&mut self, inst: InstId, time: i64) {
        let row = self.row_of(time);
        let pos = self.rows[row]
            .iter()
            .position(|&(i, _)| i == inst)
            .expect("instruction must occupy the row it is removed from");
        self.rows[row].remove(pos);
    }

    /// Total occupied slots (for tests/statistics).
    pub fn occupancy(&self) -> usize {
        self.rows.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res() -> IssueResources {
        IssueResources {
            m: 2,
            i: 2,
            f: 2,
            b: 1,
        }
    }

    #[test]
    fn wraps_modulo_ii() {
        let mut mrt = Mrt::new(2, res());
        assert!(mrt.place(InstId(0), 0, UnitClass::M));
        assert!(mrt.place(InstId(1), 2, UnitClass::M), "same row as time 0");
        assert!(
            !mrt.place(InstId(2), 4, UnitClass::M),
            "row 0 M slots now full"
        );
        assert!(mrt.place(InstId(2), 1, UnitClass::M), "row 1 free");
    }

    #[test]
    fn a_class_prefers_i_then_m() {
        let mut mrt = Mrt::new(1, res());
        assert!(mrt.place(InstId(0), 0, UnitClass::A));
        assert!(mrt.place(InstId(1), 0, UnitClass::A));
        assert!(mrt.place(InstId(2), 0, UnitClass::A));
        assert!(mrt.place(InstId(3), 0, UnitClass::A));
        assert!(!mrt.place(InstId(4), 0, UnitClass::A), "4 shared slots");
        // But a pure M op no longer fits either: A ops spilled into M.
        assert!(!mrt.fits(0, UnitClass::M));
    }

    #[test]
    fn forced_placement_evicts_most_recent() {
        let mut mrt = Mrt::new(1, res());
        assert!(mrt.place(InstId(0), 0, UnitClass::M));
        assert!(mrt.place(InstId(1), 0, UnitClass::M));
        let evicted = mrt.place_forced(InstId(2), 0, UnitClass::M);
        assert_eq!(evicted, vec![InstId(1)]);
        assert_eq!(mrt.occupancy(), 2);
    }

    #[test]
    fn forced_placement_without_conflict_evicts_nothing() {
        let mut mrt = Mrt::new(1, res());
        let evicted = mrt.place_forced(InstId(0), 0, UnitClass::F);
        assert!(evicted.is_empty());
    }

    #[test]
    fn remove_frees_slot() {
        let mut mrt = Mrt::new(1, res());
        assert!(mrt.place(InstId(0), 0, UnitClass::F));
        assert!(mrt.place(InstId(1), 0, UnitClass::F));
        assert!(!mrt.fits(0, UnitClass::F));
        mrt.remove(InstId(0), 0);
        assert!(mrt.fits(0, UnitClass::F));
    }

    #[test]
    #[should_panic(expected = "II must be positive")]
    fn zero_ii_panics() {
        let _ = Mrt::new(0, res());
    }

    #[test]
    fn negative_time_wraps() {
        let mut mrt = Mrt::new(3, res());
        assert!(mrt.place(InstId(0), -1, UnitClass::M)); // row 2
        assert!(mrt.place(InstId(1), 2, UnitClass::M));
        assert!(!mrt.place(InstId(2), 5, UnitClass::M), "row 2 full");
    }
}
