//! Rotating register allocation for pipelined loops.
//!
//! Follows the accounting the paper describes (Sec. 1.1/2.2): a value whose
//! lifetime spans `x` kernel iterations occupies a range of `x` consecutive
//! rotating registers, because a new instance is produced every II cycles
//! and all still-live instances need distinct registers. Stage predicates
//! claim one rotating predicate register per pipeline stage.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use ltsp_ir::{LoopIr, RegClass, VReg};
use ltsp_machine::MachineModel;

use crate::schedule::ModuloSchedule;

/// Successful rotating-register allocation with per-class usage counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegAllocation {
    /// Rotating general registers used.
    pub rotating_gr: u32,
    /// Rotating FP registers used.
    pub rotating_fr: u32,
    /// Rotating predicate registers used (includes stage predicates).
    pub rotating_pr: u32,
    /// Non-rotating (static) GRs for loop-invariant live-ins.
    pub static_gr: u32,
    /// Non-rotating FP registers for loop-invariant live-ins.
    pub static_fr: u32,
    /// Pipeline stages, hence stage predicates.
    pub stages: u32,
}

impl RegAllocation {
    /// Rotating registers used for a class.
    pub fn rotating(&self, class: RegClass) -> u32 {
        match class {
            RegClass::Gr => self.rotating_gr,
            RegClass::Fr => self.rotating_fr,
            RegClass::Pr => self.rotating_pr,
        }
    }

    /// All registers (rotating + static) used for a class.
    pub fn total(&self, class: RegClass) -> u32 {
        match class {
            RegClass::Gr => self.rotating_gr + self.static_gr,
            RegClass::Fr => self.rotating_fr + self.static_fr,
            RegClass::Pr => self.rotating_pr,
        }
    }
}

/// Rotating-register demand exceeded the machine's supply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegAllocError {
    /// The class that overflowed.
    pub class: RegClass,
    /// Registers demanded.
    pub needed: u32,
    /// Rotating registers available.
    pub available: u32,
}

impl fmt::Display for RegAllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rotating {} allocation failed: need {}, have {}",
            self.class, self.needed, self.available
        )
    }
}

impl Error for RegAllocError {}

/// Allocates rotating registers for a scheduled loop.
///
/// For every value defined in the loop, the lifetime runs from its
/// definition's issue time to the latest read, where a read through a
/// loop-carried operand of distance `omega` happens `omega · II` cycles
/// later in absolute time. The value then needs
/// `floor(lifetime / II) + 1` consecutive rotating registers. Per-class
/// demand is the sum over values (plus one predicate per stage), checked
/// against the machine's rotating supply.
///
/// # Errors
///
/// Returns [`RegAllocError`] for the first class whose demand exceeds the
/// rotating supply; the pipeliner then walks its fallback ladder (drop
/// latency boosts, then raise the II — both shrink lifetimes).
pub fn allocate_rotating(
    lp: &LoopIr,
    sched: &ModuloSchedule,
    machine: &MachineModel,
) -> Result<RegAllocation, RegAllocError> {
    let ii = i64::from(sched.ii());
    // Last absolute read time per defined register.
    let mut last_read: HashMap<VReg, i64> = HashMap::new();
    let mut def_time: HashMap<VReg, i64> = HashMap::new();
    for inst in lp.insts() {
        if let Some(d) = inst.dst() {
            def_time.insert(d, sched.time(inst.id()));
        }
    }
    for inst in lp.insts() {
        let t_use = sched.time(inst.id());
        for s in inst.reads() {
            if !def_time.contains_key(&s.reg) {
                continue; // live-in: static register
            }
            let abs = t_use + ii * i64::from(s.omega);
            let e = last_read.entry(s.reg).or_insert(abs);
            if abs > *e {
                *e = abs;
            }
        }
    }

    let mut used = [0u32; 3];
    for (&reg, &t_def) in &def_time {
        let t_last = last_read.get(&reg).copied().unwrap_or(t_def);
        let span = (t_last - t_def).max(0);
        let regs = (span / ii) as u32 + 1;
        let slot = match reg.class() {
            RegClass::Gr => 0,
            RegClass::Fr => 1,
            RegClass::Pr => 2,
        };
        used[slot] += regs;
    }
    let stages = sched.stage_count();
    used[2] += stages; // stage predicates

    let alloc = RegAllocation {
        rotating_gr: used[0],
        rotating_fr: used[1],
        rotating_pr: used[2],
        static_gr: lp
            .live_in()
            .iter()
            .filter(|r| r.class() == RegClass::Gr)
            .count() as u32,
        static_fr: lp
            .live_in()
            .iter()
            .filter(|r| r.class() == RegClass::Fr)
            .count() as u32,
        stages,
    };

    for class in RegClass::ALL {
        let needed = alloc.rotating(class);
        let available = machine.registers().rotating(class);
        if needed > available {
            return Err(RegAllocError {
                class,
                needed,
                available,
            });
        }
    }
    Ok(alloc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_ddg::Ddg;
    use ltsp_ir::{DataClass, LoopBuilder};

    use crate::scheduler::ModuloScheduler;

    fn schedule(lp: &LoopIr, m: &MachineModel, boost: u32, ii: u32) -> ModuloSchedule {
        let ddg = Ddg::build_with_load_floor(lp, m, boost);
        ModuloScheduler::new(lp, m, &ddg)
            .schedule_at(ii, 8)
            .unwrap()
    }

    fn running_example() -> LoopIr {
        let mut b = LoopBuilder::new("ex");
        let s = b.affine_ref("s", DataClass::Int, 0, 4, 4);
        let d = b.affine_ref("d", DataClass::Int, 1 << 20, 4, 4);
        let c = b.live_in_gr("c");
        let v = b.load(s);
        let sum = b.add(v, c);
        b.store(d, sum);
        b.build().unwrap()
    }

    #[test]
    fn paper_example_register_counts() {
        // II=1, ld@0 -> add@1 -> st@2: load value spans 1 cycle -> 2 regs?
        // Lifetime: def at 0, read at 1 -> span 1, regs = 1/1+1 = 2... the
        // paper's Fig. 3 uses r32 (written) read as r33 next iteration:
        // exactly 2 rotating names touched, 1 live at a time plus the
        // in-flight one. Our accounting charges floor(span/II)+1 = 2.
        let m = MachineModel::itanium2();
        let lp = running_example();
        let sched = schedule(&lp, &m, 0, 1);
        let a = allocate_rotating(&lp, &sched, &m).unwrap();
        assert_eq!(a.stages, 3);
        // load value: 2, add value: 2 -> 4 rotating GRs.
        assert_eq!(a.rotating_gr, 4);
        assert_eq!(a.rotating_pr, 3, "one stage predicate per stage");
        assert_eq!(a.static_gr, 1, "live-in constant");
    }

    #[test]
    fn boosting_grows_register_pressure() {
        let m = MachineModel::itanium2();
        let lp = running_example();
        let base = allocate_rotating(&lp, &schedule(&lp, &m, 0, 1), &m).unwrap();
        let boosted = allocate_rotating(&lp, &schedule(&lp, &m, 21, 1), &m).unwrap();
        assert!(boosted.rotating_gr > base.rotating_gr);
        assert!(boosted.stages > base.stages);
        assert!(boosted.rotating_pr > base.rotating_pr);
    }

    #[test]
    fn higher_ii_shrinks_pressure() {
        let m = MachineModel::itanium2();
        let lp = running_example();
        let at1 = allocate_rotating(&lp, &schedule(&lp, &m, 21, 1), &m).unwrap();
        let at4 = allocate_rotating(&lp, &schedule(&lp, &m, 21, 4), &m).unwrap();
        assert!(at4.rotating_gr <= at1.rotating_gr);
        assert!(at4.rotating_pr <= at1.rotating_pr);
    }

    #[test]
    fn overflow_is_reported() {
        // Many parallel FP loads boosted hard at II=1 overflow the FP file:
        // each value spans ~165 cycles -> ~166 regs each.
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("big");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x);
        let _s = b.fadd(v, v);
        let lp = b.build().unwrap();
        let sched = schedule(&lp, &m, 165, 1);
        let err = allocate_rotating(&lp, &sched, &m).unwrap_err();
        assert_eq!(err.class, RegClass::Fr);
        assert!(err.needed > err.available);
        let msg = err.to_string();
        assert!(msg.contains("FR"), "{msg}");
    }

    #[test]
    fn dead_value_needs_one_register() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("dead");
        let x = b.affine_ref("x", DataClass::Int, 0, 4, 4);
        let _v = b.load(x); // value never read
        let lp = b.build().unwrap();
        let sched = schedule(&lp, &m, 0, 1);
        let a = allocate_rotating(&lp, &sched, &m).unwrap();
        assert_eq!(a.rotating_gr, 1);
    }
}
