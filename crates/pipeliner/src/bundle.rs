//! VLIW bundle formation for emitted kernels.
//!
//! Itanium fetches instructions in 128-bit *bundles* of three slots, each
//! bundle stamped with a template that fixes the unit type per slot (MII,
//! MMI, MFI, MMF, …) and the position of stops (`;;`). A 2-bundle-wide
//! machine issues up to six instructions per cycle. This module packs each
//! kernel cycle's instructions into legal bundles, padding unused slots
//! with `nop`s — the code-size-relevant step of code generation that the
//! schedule alone does not show.

use ltsp_ir::{LoopIr, UnitClass};

use crate::schedule::ModuloSchedule;

/// A bundle template: three slots of fixed unit types.
///
/// The subset modeled covers the templates integer/FP loop kernels need;
/// `B`-slot templates are unnecessary because the kernel's only branch is
/// the trailing `br.ctop`, which gets its own `MIB`-style bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BundleTemplate {
    /// M-unit, I-unit, I-unit.
    Mii,
    /// M-unit, M-unit, I-unit.
    Mmi,
    /// M-unit, F-unit, I-unit.
    Mfi,
    /// M-unit, M-unit, F-unit.
    Mmf,
    /// M-unit, I-unit, B-unit (used for the back edge).
    Mib,
}

impl BundleTemplate {
    /// The slot unit types of this template.
    pub fn slots(self) -> [UnitClass; 3] {
        match self {
            BundleTemplate::Mii => [UnitClass::M, UnitClass::I, UnitClass::I],
            BundleTemplate::Mmi => [UnitClass::M, UnitClass::M, UnitClass::I],
            BundleTemplate::Mfi => [UnitClass::M, UnitClass::F, UnitClass::I],
            BundleTemplate::Mmf => [UnitClass::M, UnitClass::M, UnitClass::F],
            BundleTemplate::Mib => [UnitClass::M, UnitClass::I, UnitClass::B],
        }
    }

    /// Template mnemonic (`.mii`, `.mmi`, …).
    pub fn name(self) -> &'static str {
        match self {
            BundleTemplate::Mii => ".mii",
            BundleTemplate::Mmi => ".mmi",
            BundleTemplate::Mfi => ".mfi",
            BundleTemplate::Mmf => ".mmf",
            BundleTemplate::Mib => ".mib",
        }
    }
}

/// One formed bundle: a template plus what occupies each slot (`None` =
/// `nop`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bundle {
    /// The chosen template.
    pub template: BundleTemplate,
    /// Instruction ids per slot; `None` is a `nop` of the slot's type.
    pub slots: [Option<ltsp_ir::InstId>; 3],
}

/// The bundled form of a kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundledKernel {
    /// Bundles per kernel cycle (each cycle ends with a stop).
    pub cycles: Vec<Vec<Bundle>>,
}

impl BundledKernel {
    /// Total bundles, including the implicit trailing `.mib` carrying the
    /// `br.ctop` back edge.
    pub fn bundle_count(&self) -> usize {
        self.cycles.iter().map(Vec::len).sum::<usize>() + 1
    }

    /// Code size in bytes (16 bytes per bundle).
    pub fn code_bytes(&self) -> usize {
        self.bundle_count() * 16
    }

    /// `nop` slots inserted by padding (excluding the back-edge bundle).
    pub fn nop_slots(&self) -> usize {
        self.cycles
            .iter()
            .flatten()
            .flat_map(|b| b.slots.iter())
            .filter(|s| s.is_none())
            .count()
    }
}

/// Can an instruction of `class` occupy a slot of `slot_class`?
fn fits(class: UnitClass, slot_class: UnitClass) -> bool {
    class == slot_class
        || (class == UnitClass::A && matches!(slot_class, UnitClass::M | UnitClass::I))
}

/// Packs a scheduled kernel into bundles, cycle by cycle.
///
/// Greedy template selection: for each cycle, instructions are grouped by
/// required unit, and templates are chosen to cover the M/F/I+A demand
/// with minimal padding. The result is exact about code size — the cost
/// the MVE ablation contrasts with rotation.
pub fn form_bundles(lp: &LoopIr, sched: &ModuloSchedule) -> BundledKernel {
    let mut cycles = Vec::new();
    for row in sched.rows() {
        let mut m: Vec<ltsp_ir::InstId> = Vec::new();
        let mut i: Vec<ltsp_ir::InstId> = Vec::new();
        let mut f: Vec<ltsp_ir::InstId> = Vec::new();
        let mut a: Vec<ltsp_ir::InstId> = Vec::new();
        for slot in &row {
            match lp.inst(slot.inst).unit_class() {
                UnitClass::M => m.push(slot.inst),
                UnitClass::I => i.push(slot.inst),
                UnitClass::F => f.push(slot.inst),
                UnitClass::A => a.push(slot.inst),
                UnitClass::B => {}
            }
        }
        let mut bundles = Vec::new();
        // Place while anything remains; pick the template matching the
        // current demand mix.
        while !(m.is_empty() && i.is_empty() && f.is_empty() && a.is_empty()) {
            let template = if !f.is_empty() && m.len() >= 2 {
                BundleTemplate::Mmf
            } else if !f.is_empty() {
                BundleTemplate::Mfi
            } else if m.len() >= 2 {
                BundleTemplate::Mmi
            } else {
                BundleTemplate::Mii
            };
            let mut slots = [None, None, None];
            for (idx, slot_class) in template.slots().into_iter().enumerate() {
                // Prefer exact-class occupants; A-class fills leftovers.
                let source = match slot_class {
                    UnitClass::M if !m.is_empty() => Some(&mut m),
                    UnitClass::I if !i.is_empty() => Some(&mut i),
                    UnitClass::F if !f.is_empty() => Some(&mut f),
                    UnitClass::M | UnitClass::I if !a.is_empty() => Some(&mut a),
                    _ => None,
                };
                if let Some(v) = source {
                    debug_assert!(fits(lp.inst(v[0]).unit_class(), slot_class));
                    slots[idx] = Some(v.remove(0));
                }
            }
            bundles.push(Bundle { template, slots });
        }
        if bundles.is_empty() {
            // An empty cycle still needs a bundle to hold the stop.
            bundles.push(Bundle {
                template: BundleTemplate::Mii,
                slots: [None, None, None],
            });
        }
        cycles.push(bundles);
    }
    BundledKernel { cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{pipeline_loop, PipelineOptions};
    use ltsp_ir::{DataClass, LoopBuilder};
    use ltsp_machine::MachineModel;

    fn running_example() -> LoopIr {
        let mut b = LoopBuilder::new("ex");
        let s = b.affine_ref("src", DataClass::Int, 0, 4, 4);
        let d = b.affine_ref("dst", DataClass::Int, 1 << 20, 4, 4);
        let c = b.live_in_gr("c");
        let v = b.load(s);
        let sum = b.add(v, c);
        b.store(d, sum);
        b.build().unwrap()
    }

    #[test]
    fn running_example_fits_one_bundle_per_cycle() {
        // ld + st (M, M) + add (A) pack into a single MMI bundle.
        let m = MachineModel::itanium2();
        let lp = running_example();
        let p = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()).unwrap();
        let bundled = form_bundles(&lp, &p.schedule);
        assert_eq!(bundled.cycles.len(), 1);
        assert_eq!(bundled.cycles[0].len(), 1);
        assert_eq!(bundled.cycles[0][0].template, BundleTemplate::Mmi);
        assert_eq!(bundled.nop_slots(), 0, "perfect packing");
        // Kernel bundle + back-edge bundle = 32 bytes of code.
        assert_eq!(bundled.code_bytes(), 32);
    }

    #[test]
    fn every_instruction_is_placed_exactly_once() {
        let m = MachineModel::itanium2();
        let lp = ltsp_workloads_free::mixed();
        let p = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()).unwrap();
        let bundled = form_bundles(&lp, &p.schedule);
        let mut placed: Vec<ltsp_ir::InstId> = bundled
            .cycles
            .iter()
            .flatten()
            .flat_map(|b| b.slots.iter().flatten().copied())
            .collect();
        placed.sort();
        let mut expected: Vec<ltsp_ir::InstId> = lp.insts().iter().map(|i| i.id()).collect();
        expected.sort();
        assert_eq!(placed, expected);
    }

    #[test]
    fn slots_match_their_unit_types() {
        let m = MachineModel::itanium2();
        let lp = ltsp_workloads_free::mixed();
        let p = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()).unwrap();
        let bundled = form_bundles(&lp, &p.schedule);
        for cycle in &bundled.cycles {
            for b in cycle {
                for (slot, class) in b.slots.iter().zip(b.template.slots()) {
                    if let Some(id) = slot {
                        assert!(
                            fits(lp.inst(*id).unit_class(), class),
                            "{id} misplaced in {class} slot"
                        );
                    }
                }
            }
        }
    }

    mod ltsp_workloads_free {
        use ltsp_ir::{DataClass, LoopBuilder, LoopIr};

        pub fn mixed() -> LoopIr {
            let mut b = LoopBuilder::new("mixed");
            let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
            let y = b.affine_ref("y", DataClass::Fp, 1 << 22, 8, 8);
            let z = b.affine_ref("z", DataClass::Int, 2 << 22, 4, 4);
            let vx = b.load(x);
            let vy = b.load(y);
            let vz = b.load(z);
            let s = b.fma(vx, vy, vx);
            let t = b.add(vz, vz);
            let u = b.shl(t, vz);
            let out = b.affine_ref("o", DataClass::Fp, 3 << 22, 8, 8);
            b.store(out, s);
            let _ = u;
            b.build().unwrap()
        }
    }
}
