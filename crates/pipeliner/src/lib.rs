//! The software pipeliner: iterative modulo scheduling with
//! latency-tolerant scheduling of non-critical loads.
//!
//! This crate implements the back-end side of the reproduced paper
//! (Sec. 3.3):
//!
//! 1. Resource II and Recurrence II computation (via [`ltsp_ddg`]);
//! 2. **criticality analysis** — every load starts non-critical; for each
//!    recurrence cycle, if raising all loads on the cycle to their
//!    hint-derived expected latencies would push the cycle's implied II
//!    above the loop's Min II, all loads on the cycle are marked critical
//!    and keep their base latency ([`classify_loads`]);
//! 3. **iterative modulo scheduling** (Rau) with height-based priority,
//!    a modulo reservation table and bounded eviction/backtracking
//!    ([`ModuloScheduler`]);
//! 4. **rotating register allocation** in the style the paper describes
//!    (a lifetime spanning *x* kernel iterations occupies *x* consecutive
//!    rotating registers) with per-class accounting ([`allocate_rotating`]);
//! 5. the **fallback ladder**: if register allocation fails, first drop the
//!    non-critical latency boosts at the same II, then escalate the II,
//!    until the loop either fits or pipelining is judged unprofitable
//!    ([`pipeline_loop`]).

mod bundle;
mod criticality;
mod emit;
mod mrt;
mod pipeline;
mod regalloc;
mod schedule;
mod scheduler;

pub use bundle::{form_bundles, Bundle, BundleTemplate, BundledKernel};
pub use criticality::{
    classify_loads, classify_loads_traced, classify_loads_with, LoadClass, LoadClassification,
};
pub use emit::{
    assign_registers, emit_kernel, emit_setup, mve_unroll_factor, RegisterAssignment, RotatingRange,
};
pub use mrt::Mrt;
pub use pipeline::{
    pipeline_loop, pipeline_loop_phased, pipeline_loop_traced, PipelineError, PipelineOptions,
    PipelineStats, PipelinedLoop,
};
pub use regalloc::{allocate_rotating, RegAllocError, RegAllocation};
pub use schedule::{KernelSlot, ModuloSchedule};
pub use scheduler::{acyclic_schedule, ModuloScheduler, ScheduleFailure};
