//! The result of modulo scheduling: a kernel schedule.

use ltsp_ir::{InstId, LoopIr};

/// One instruction's position in the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelSlot {
    /// The instruction.
    pub inst: InstId,
    /// Issue cycle within the kernel (`0..II`).
    pub cycle: u32,
    /// Pipeline stage (`time / II`): which source iteration relative to the
    /// newest one this instruction works on.
    pub stage: u32,
}

/// A modulo schedule: an II plus an absolute issue time per instruction.
///
/// Time `t` maps to kernel cycle `t % II` and stage `t / II`. The number of
/// stages determines the prolog/epilog length: a pipeline with `S` stages
/// needs `S − 1` extra kernel iterations per loop execution (Sec. 1.1 of
/// the paper) — the "fixed cost" that latency-tolerant scheduling grows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuloSchedule {
    ii: u32,
    times: Vec<i64>,
}

impl ModuloSchedule {
    /// Wraps raw schedule times (indexed by instruction id).
    ///
    /// # Panics
    ///
    /// Panics if `ii == 0` or any time is negative.
    pub fn new(ii: u32, times: Vec<i64>) -> Self {
        assert!(ii > 0, "II must be positive");
        assert!(times.iter().all(|&t| t >= 0), "schedule times must be >= 0");
        ModuloSchedule { ii, times }
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Absolute schedule time of an instruction.
    pub fn time(&self, inst: InstId) -> i64 {
        self.times[inst.index()]
    }

    /// Kernel cycle (`time % II`) of an instruction.
    pub fn cycle(&self, inst: InstId) -> u32 {
        (self.time(inst) % i64::from(self.ii)) as u32
    }

    /// Stage (`time / II`) of an instruction.
    pub fn stage(&self, inst: InstId) -> u32 {
        (self.time(inst) / i64::from(self.ii)) as u32
    }

    /// Number of pipeline stages: `max(stage) + 1`.
    pub fn stage_count(&self) -> u32 {
        self.times
            .iter()
            .map(|&t| (t / i64::from(self.ii)) as u32)
            .max()
            .map_or(1, |s| s + 1)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// True when the schedule covers no instructions.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// All kernel slots grouped by kernel cycle (row), each row sorted by
    /// stage. This is the shape the execution simulator consumes.
    pub fn rows(&self) -> Vec<Vec<KernelSlot>> {
        let mut rows: Vec<Vec<KernelSlot>> = vec![Vec::new(); self.ii as usize];
        for (idx, &t) in self.times.iter().enumerate() {
            let slot = KernelSlot {
                inst: InstId(idx as u32),
                cycle: (t % i64::from(self.ii)) as u32,
                stage: (t / i64::from(self.ii)) as u32,
            };
            rows[slot.cycle as usize].push(slot);
        }
        for row in &mut rows {
            row.sort_by_key(|s| (s.stage, s.inst));
        }
        rows
    }

    /// Pretty-prints the kernel for debugging, one row per kernel cycle.
    pub fn dump(&self, lp: &LoopIr) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "kernel II={} stages={} ({} insts)",
            self.ii,
            self.stage_count(),
            self.len()
        );
        for (c, row) in self.rows().iter().enumerate() {
            let _ = write!(s, "  cycle {c}:");
            for slot in row {
                let _ = write!(
                    s,
                    "  [s{}] {}",
                    slot.stage,
                    lp.inst(slot.inst).op().mnemonic()
                );
            }
            let _ = writeln!(s);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_stage_decomposition() {
        let s = ModuloSchedule::new(3, vec![0, 4, 7]);
        assert_eq!(s.cycle(InstId(0)), 0);
        assert_eq!(s.stage(InstId(0)), 0);
        assert_eq!(s.cycle(InstId(1)), 1);
        assert_eq!(s.stage(InstId(1)), 1);
        assert_eq!(s.cycle(InstId(2)), 1);
        assert_eq!(s.stage(InstId(2)), 2);
        assert_eq!(s.stage_count(), 3);
    }

    #[test]
    fn rows_group_by_cycle() {
        let s = ModuloSchedule::new(2, vec![0, 2, 1, 5]);
        let rows = s.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].len(), 2, "times 0 and 2 share cycle 0");
        assert_eq!(rows[1].len(), 2, "times 1 and 5 share cycle 1");
        // Sorted by stage within a row.
        assert!(rows[0][0].stage <= rows[0][1].stage);
    }

    #[test]
    fn paper_fig4_shape() {
        // II=1, load at 0, add at 3, store at 4 -> 5 stages.
        let s = ModuloSchedule::new(1, vec![0, 3, 4]);
        assert_eq!(s.stage_count(), 5);
    }

    #[test]
    #[should_panic(expected = "must be >= 0")]
    fn negative_time_rejected() {
        let _ = ModuloSchedule::new(1, vec![-1]);
    }
}
