//! Criticality analysis of loads against recurrence cycles (paper Sec. 3.3).

use ltsp_ddg::Ddg;
use ltsp_ir::{InstId, LatencyHint, LoopIr, Opcode};
use ltsp_machine::{LatencyQuery, MachineModel};

/// Whether a load may be scheduled at its hint-derived expected latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadClass {
    /// On a constraining recurrence cycle: keep the base latency.
    Critical,
    /// Enough slack: schedule at the expected latency if hinted.
    NonCritical,
}

/// Result of [`classify_loads`]: a per-load class plus the effective
/// latency query the scheduler should use.
#[derive(Debug, Clone)]
pub struct LoadClassification {
    class: Vec<Option<LoadClass>>,
    queries: Vec<LatencyQuery>,
    /// Number of loads scheduled at a boosted latency.
    boosted: usize,
}

impl LoadClassification {
    /// The class of a load; `None` for non-loads.
    pub fn class(&self, inst: InstId) -> Option<LoadClass> {
        self.class[inst.index()]
    }

    /// True when the instruction is a load marked critical.
    pub fn is_critical(&self, inst: InstId) -> bool {
        self.class[inst.index()] == Some(LoadClass::Critical)
    }

    /// The latency query the scheduler should issue for this load: the
    /// hint-derived expected latency for hinted non-critical loads, a
    /// partial exact latency for loads on balanced recurrence cycles, the
    /// base latency otherwise.
    pub fn query(&self, inst: InstId) -> LatencyQuery {
        self.queries[inst.index()]
    }

    /// Number of loads that end up scheduled at a boosted latency.
    pub fn boosted_count(&self) -> usize {
        self.boosted
    }

    /// A classification that boosts nothing (baseline compilation, or the
    /// register-allocation fallback that drops all boosts).
    pub fn all_base(lp: &LoopIr) -> Self {
        let class = lp
            .insts()
            .iter()
            .map(|i| i.op().is_load().then_some(LoadClass::Critical))
            .collect();
        LoadClassification {
            queries: vec![LatencyQuery::Base; lp.insts().len()],
            class,
            boosted: 0,
        }
    }
}

/// Classifies every load as critical or non-critical (Sec. 3.3).
///
/// All loads start non-critical. For each recurrence cycle of the
/// base-latency dependence graph, the cycle length is recomputed with every
/// load on the cycle raised to its hint-derived expected latency; if the
/// cycle's implied II then exceeds `max(Resource II, base Recurrence II)` —
/// i.e. the raise would likely increase the loop's II — all loads on that
/// cycle are marked critical.
///
/// `hint_of` supplies the effective hint per load (policy-dependent: HLO
/// hints, blanket L3, FP-only L2, …). Loads without a hint are never
/// boosted, but still participate in cycle marking as the paper specifies
/// (all loads of a violating cycle become critical).
pub fn classify_loads(
    lp: &LoopIr,
    machine: &MachineModel,
    ddg_base: &Ddg,
    hint_of: &dyn Fn(InstId) -> Option<LatencyHint>,
    cycle_cap: usize,
) -> LoadClassification {
    classify_loads_with(lp, machine, ddg_base, hint_of, cycle_cap, false)
}

/// [`classify_loads`] with the **balanced-recurrence extension** the paper
/// names as future work ("balancing latency increases between different
/// loads on a recurrence cycle"): instead of marking every load on a
/// violating cycle critical, the cycle's slack against the Min II —
/// `threshold·Σomega − base length` — is divided equally among the cycle's
/// load-data edges, and each load is scheduled for `base + share`, capped
/// at its hinted expected latency. Loads on several cycles take the
/// smallest share. With `balance_cycles = false` this is exactly the
/// paper's algorithm.
pub fn classify_loads_with(
    lp: &LoopIr,
    machine: &MachineModel,
    ddg_base: &Ddg,
    hint_of: &dyn Fn(InstId) -> Option<LatencyHint>,
    cycle_cap: usize,
    balance_cycles: bool,
) -> LoadClassification {
    classify_loads_traced(
        lp,
        machine,
        ddg_base,
        hint_of,
        cycle_cap,
        balance_cycles,
        &ltsp_telemetry::Telemetry::disabled(),
    )
}

/// [`classify_loads_with`] recording the analysis on a telemetry sink:
/// the recurrence-cycle enumeration and, per load, a
/// [`ltsp_telemetry::Event::CriticalityVerdict`] with the worst implied II
/// over raised cycles through the load against the II threshold.
pub fn classify_loads_traced(
    lp: &LoopIr,
    machine: &MachineModel,
    ddg_base: &Ddg,
    hint_of: &dyn Fn(InstId) -> Option<LatencyHint>,
    cycle_cap: usize,
    balance_cycles: bool,
    tel: &ltsp_telemetry::Telemetry,
) -> LoadClassification {
    let n = lp.insts().len();
    let mut class: Vec<Option<LoadClass>> = lp
        .insts()
        .iter()
        .map(|i| i.op().is_load().then_some(LoadClass::NonCritical))
        .collect();
    let hints: Vec<Option<LatencyHint>> = lp
        .insts()
        .iter()
        .map(|i| {
            if i.op().is_load() {
                hint_of(i.id())
            } else {
                None
            }
        })
        .collect();

    let res_mii = machine.res_mii(lp);
    let rec_mii_base = ddg_base.rec_mii();
    let threshold = res_mii.max(rec_mii_base);

    let base_lat = |id: InstId| -> u32 {
        match lp.inst(id).op() {
            Opcode::Load(dc) => machine.load_latency(dc, LatencyQuery::Base),
            _ => 0,
        }
    };
    let hinted_lat = |id: InstId| -> u32 {
        match (lp.inst(id).op(), hints[id.index()]) {
            (Opcode::Load(dc), Some(h)) => machine.load_latency(dc, LatencyQuery::Hinted(h)),
            (Opcode::Load(dc), None) => machine.load_latency(dc, LatencyQuery::Base),
            _ => 0,
        }
    };
    let raised = |id: InstId| -> Option<u32> { lp.inst(id).op().is_load().then(|| hinted_lat(id)) };

    // Per-load latency ceiling; starts at the full hinted value and is
    // reduced by every violating cycle the load sits on.
    let mut allowed: Vec<u32> = (0..n).map(|i| hinted_lat(InstId(i as u32))).collect();

    // Worst raised-cycle II through each load (0 = on no cycle); feeds
    // the per-load criticality verdicts in the decision trace.
    let mut worst_ii: Vec<u32> = vec![0; n];

    for cycle in ddg_base.recurrence_cycles_traced(cycle_cap, tel) {
        let summary = ddg_base.cycle_summary(&cycle, &raised);
        for load in ddg_base.cycle_loads(&cycle) {
            let w = &mut worst_ii[load.index()];
            *w = (*w).max(summary.implied_ii);
        }
        if summary.implied_ii <= threshold {
            continue;
        }
        let loads = ddg_base.cycle_loads(&cycle);
        if !balance_cycles {
            for load in loads {
                class[load.index()] = Some(LoadClass::Critical);
            }
            continue;
        }
        // Balanced mode: split the cycle's slack among its load edges.
        let base_summary = ddg_base.cycle_summary(&cycle, &|id| {
            lp.inst(id).op().is_load().then(|| base_lat(id))
        });
        let budget =
            (u64::from(threshold) * base_summary.omega).saturating_sub(base_summary.latency);
        // How many load-data edges each load contributes to the cycle.
        let mut edge_count = 0u64;
        for &ei in &cycle.edges {
            let e = ddg_base.edges()[ei];
            if e.kind == ltsp_ddg::DepKind::Flow && ddg_base.is_load(e.from) {
                edge_count += 1;
            }
        }
        if edge_count == 0 || budget == 0 {
            for load in loads {
                class[load.index()] = Some(LoadClass::Critical);
            }
            continue;
        }
        let share = (budget / edge_count) as u32;
        for load in loads {
            let idx = load.index();
            if share == 0 {
                class[idx] = Some(LoadClass::Critical);
            } else {
                let cap = base_lat(load) + share;
                allowed[idx] = allowed[idx].min(cap);
            }
        }
    }

    let mut queries = vec![LatencyQuery::Base; n];
    let mut boosted = 0usize;
    for i in 0..n {
        let id = InstId(i as u32);
        if !lp.inst(id).op().is_load() {
            continue;
        }
        if class[i] == Some(LoadClass::Critical) {
            continue;
        }
        let base = base_lat(id);
        let full = hinted_lat(id);
        let a = allowed[i];
        if a <= base || hints[i].is_none() {
            continue;
        }
        queries[i] = if a >= full {
            LatencyQuery::Hinted(hints[i].expect("checked above"))
        } else {
            LatencyQuery::Exact(a)
        };
        boosted += 1;
    }

    if tel.is_enabled() {
        for i in 0..n {
            let id = InstId(i as u32);
            if !lp.inst(id).op().is_load() {
                continue;
            }
            let critical = class[i] == Some(LoadClass::Critical);
            tel.emit(ltsp_telemetry::Event::CriticalityVerdict {
                loop_name: lp.name().to_string(),
                load: format!("i{i}"),
                critical,
                implied_ii: worst_ii[i],
                threshold,
                slack: i64::from(threshold) - i64::from(worst_ii[i]),
            });
            tel.counter_add(
                if critical {
                    "pipeliner.critical_loads"
                } else {
                    "pipeliner.noncritical_loads"
                },
                1,
            );
        }
    }

    LoadClassification {
        class,
        queries,
        boosted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_ir::{DataClass, LoopBuilder};
    use ltsp_machine::MachineModel;

    fn build_ddg_base(lp: &LoopIr, m: &MachineModel) -> Ddg {
        Ddg::build(lp, m, &|id| {
            if let Opcode::Load(dc) = lp.inst(id).op() {
                m.load_latency(dc, LatencyQuery::Base)
            } else {
                0
            }
        })
    }

    #[test]
    fn streaming_load_is_non_critical() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("stream");
        let x = b.affine_ref("x", DataClass::Int, 0, 4, 4);
        let c = b.live_in_gr("c");
        let v = b.load(x);
        let s = b.add(v, c);
        let d = b.affine_ref("d", DataClass::Int, 1 << 20, 4, 4);
        b.store(d, s);
        let lp = b.build().unwrap();
        let ddg = build_ddg_base(&lp, &m);
        let cls = classify_loads(&lp, &m, &ddg, &|_| Some(LatencyHint::L3), 1000);
        assert_eq!(cls.class(InstId(0)), Some(LoadClass::NonCritical));
        assert_eq!(cls.query(InstId(0)), LatencyQuery::Hinted(LatencyHint::L3));
        assert_eq!(cls.boosted_count(), 1);
    }

    #[test]
    fn pointer_chase_is_critical() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("mcf");
        let node = b.chase_ref("node->child", 0, 64, 1 << 22, 0.1);
        let fld = b.deref_ref("node->f", DataClass::Int, node, 8, 1 << 22, 8);
        let nv = b.load(node);
        let fv = b.load(fld);
        let acc = b.add_reduce(fv);
        let _ = (nv, acc);
        let lp = b.build().unwrap();
        let ddg = build_ddg_base(&lp, &m);
        let cls = classify_loads(&lp, &m, &ddg, &|_| Some(LatencyHint::L3), 1000);
        // The chase load feeds itself: raising it to 21 would push the
        // recurrence to 21 >> MinII, so it is critical.
        assert_eq!(cls.class(InstId(0)), Some(LoadClass::Critical));
        assert_eq!(cls.query(InstId(0)), LatencyQuery::Base);
        // The field load hangs off the cycle: non-critical, boosted.
        assert_eq!(cls.class(InstId(1)), Some(LoadClass::NonCritical));
        assert_eq!(cls.query(InstId(1)), LatencyQuery::Hinted(LatencyHint::L3));
        assert_eq!(cls.boosted_count(), 1);
    }

    #[test]
    fn balanced_mode_gives_cycle_loads_partial_boosts() {
        // mcf-like loop: ResMII 2 (4 memory ops on 2 M slots), chase
        // recurrence of base length 1 -> budget 1 -> the chase load is
        // scheduled at Exact(2) instead of being marked critical.
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("mcf");
        let node = b.chase_ref("node->child", 0, 64, 1 << 22, 0.1);
        let f1 = b.deref_ref("node->a", DataClass::Int, node, 128, 1 << 22, 8);
        let f2 = b.deref_ref("node->b", DataClass::Int, node, 192, 1 << 22, 8);
        let out = b.deref_ref("node->o", DataClass::Int, node, 16, 1 << 22, 8);
        let _nv = b.load(node);
        let v1 = b.load(f1);
        let v2 = b.load(f2);
        let s = b.add(v1, v2);
        b.store(out, s);
        let lp = b.build().unwrap();
        let ddg = build_ddg_base(&lp, &m);
        assert_eq!(m.res_mii(&lp), 2);

        let strict = classify_loads_with(&lp, &m, &ddg, &|_| Some(LatencyHint::L3), 1000, false);
        assert_eq!(strict.class(InstId(0)), Some(LoadClass::Critical));
        assert_eq!(strict.query(InstId(0)), LatencyQuery::Base);

        let balanced = classify_loads_with(&lp, &m, &ddg, &|_| Some(LatencyHint::L3), 1000, true);
        assert_eq!(balanced.class(InstId(0)), Some(LoadClass::NonCritical));
        assert_eq!(balanced.query(InstId(0)), LatencyQuery::Exact(2));
        // Off-cycle loads keep their full hinted latency in both modes.
        assert_eq!(
            balanced.query(InstId(1)),
            LatencyQuery::Hinted(LatencyHint::L3)
        );
        assert_eq!(balanced.boosted_count(), strict.boosted_count() + 1);
    }

    #[test]
    fn balanced_mode_never_raises_min_ii() {
        use ltsp_workloads_free::loops_with_cycles;
        let m = MachineModel::itanium2();
        for lp in loops_with_cycles() {
            let ddg = build_ddg_base(&lp, &m);
            let threshold = m.res_mii(&lp).max(ddg.rec_mii());
            let cls = classify_loads_with(&lp, &m, &ddg, &|_| Some(LatencyHint::L3), 1000, true);
            // Rebuild the DDG with the balanced latencies: the RecMII must
            // not exceed the threshold.
            let boosted = Ddg::build(&lp, &m, &|id| {
                if let Opcode::Load(dc) = lp.inst(id).op() {
                    m.load_latency(dc, cls.query(id))
                } else {
                    0
                }
            });
            assert!(
                boosted.rec_mii() <= threshold,
                "{}: balanced RecMII {} above threshold {}",
                lp.name(),
                boosted.rec_mii(),
                threshold
            );
        }
    }

    mod ltsp_workloads_free {
        use ltsp_ir::{DataClass, LoopBuilder, LoopIr};

        pub fn loops_with_cycles() -> Vec<LoopIr> {
            let mut out = Vec::new();
            // Chase with varying amounts of surrounding work.
            for extra in 0..4u64 {
                let mut b = LoopBuilder::new(format!("chase-{extra}"));
                let node = b.chase_ref("n", 0, 64, 1 << 22, 0.1);
                let _ = b.load(node);
                for k in 0..extra {
                    let r = b.affine_ref(&format!("p{k}"), DataClass::Int, k << 24, 4, 4);
                    let v = b.load(r);
                    let _ = b.add(v, v);
                }
                out.push(b.build().unwrap());
            }
            out
        }
    }

    #[test]
    fn unhinted_loads_stay_base() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("s");
        let x = b.affine_ref("x", DataClass::Int, 0, 4, 4);
        let v = b.load(x);
        let _ = b.add(v, v);
        let lp = b.build().unwrap();
        let ddg = build_ddg_base(&lp, &m);
        let cls = classify_loads(&lp, &m, &ddg, &|_| None, 1000);
        assert_eq!(cls.class(InstId(0)), Some(LoadClass::NonCritical));
        assert_eq!(cls.query(InstId(0)), LatencyQuery::Base);
        assert_eq!(cls.boosted_count(), 0);
    }

    #[test]
    fn load_on_slack_rich_recurrence_stays_non_critical() {
        // A gather whose index load participates in a recurrence with a
        // large omega: raising to L2 (11) keeps ceil(latency/omega) at or
        // below MinII when the loop is resource-bound, so the load remains
        // non-critical.
        use ltsp_ir::{
            Inst, InstId, LoopIr, MemRefId, MemoryRef, Opcode, RegClass, SrcOperand, VReg,
        };
        let m = MachineModel::itanium2();
        // Loop: 10 independent affine loads (ResMII = ceil(10/2) = 5) plus
        // a cycle  v = load(a) ; w = add(v, w[-4])  where the load reads an
        // affine stream: cycle latency (1 raised to 11) + 1 over omega 4 ->
        // implied II 3 <= 5.
        let mut insts = Vec::new();
        let mut memrefs = Vec::new();
        for k in 0..10u32 {
            memrefs.push(MemoryRef::new(
                format!("p{k}"),
                DataClass::Int,
                ltsp_ir::AccessPattern::Affine {
                    base: u64::from(k) << 22,
                    stride: 4,
                },
                4,
            ));
            insts.push(Inst::new(
                InstId(k),
                Opcode::Load(DataClass::Int),
                Some(VReg::new(RegClass::Gr, k)),
                vec![],
                Some(MemRefId(k)),
            ));
        }
        let w = VReg::new(RegClass::Gr, 100);
        insts.push(Inst::new(
            InstId(10),
            Opcode::Add,
            Some(w),
            vec![
                SrcOperand::now(VReg::new(RegClass::Gr, 0)),
                SrcOperand::carried(w, 4),
            ],
            None,
        ));
        let lp = LoopIr::new("slacky", insts, memrefs, vec![], vec![]).unwrap();
        let ddg = build_ddg_base(&lp, &m);
        assert_eq!(m.res_mii(&lp), 5);
        let cls = classify_loads(&lp, &m, &ddg, &|_| Some(LatencyHint::L2), 10_000);
        for k in 0..10u32 {
            assert_eq!(
                cls.class(InstId(k)),
                Some(LoadClass::NonCritical),
                "load {k} should stay non-critical"
            );
        }
        assert_eq!(cls.boosted_count(), 10);
    }

    #[test]
    fn l3_hint_on_tight_recurrence_marks_critical() {
        // Same shape but omega 1 and L3 hint: 21 + 1 over omega 1 -> 22 > 5.
        use ltsp_ir::{
            Inst, InstId, LoopIr, MemRefId, MemoryRef, Opcode, RegClass, SrcOperand, VReg,
        };
        let m = MachineModel::itanium2();
        let mut insts = Vec::new();
        let memrefs = vec![MemoryRef::new(
            "g",
            DataClass::Int,
            ltsp_ir::AccessPattern::Gather {
                index: MemRefId(0),
                base: 0,
                elem_bytes: 4,
                region_bytes: 1 << 20,
            },
            4,
        )];
        let v = VReg::new(RegClass::Gr, 0);
        let w = VReg::new(RegClass::Gr, 1);
        // v = load(g) reading w (the index) from last iteration;
        // w = add(v): a cycle load -> add -> load with omega 1.
        insts.push(Inst::new(
            InstId(0),
            Opcode::Load(DataClass::Int),
            Some(v),
            vec![SrcOperand::carried(w, 1)],
            Some(MemRefId(0)),
        ));
        insts.push(Inst::new(
            InstId(1),
            Opcode::Add,
            Some(w),
            vec![SrcOperand::now(v)],
            None,
        ));
        // The gather pattern's index source must be loaded; point it at
        // itself (ref 0 is loaded by inst 0).
        let lp = LoopIr::new("tight", insts, memrefs, vec![], vec![]).unwrap();
        let ddg = build_ddg_base(&lp, &m);
        let cls = classify_loads(&lp, &m, &ddg, &|_| Some(LatencyHint::L3), 10_000);
        assert_eq!(cls.class(InstId(0)), Some(LoadClass::Critical));
        assert_eq!(cls.boosted_count(), 0);
    }
}
