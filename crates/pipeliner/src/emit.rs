//! Concrete rotating-register assignment and kernel assembly emission.
//!
//! [`allocate_rotating`](crate::allocate_rotating) only *counts* registers;
//! this module assigns concrete architectural register numbers the way the
//! paper's code listings do (Figs. 3 and 6) and renders the kernel as
//! Itanium-style assembly with stage predicates and a `br.ctop` back edge.
//!
//! Register rotation semantics: a value written to rotating register `X`
//! appears in `X + k` after `k` kernel back-edges. A definition at stage
//! `s_d` read by a use at stage `s_u` with loop-carried distance `omega`
//! crosses `s_u + omega − s_d` back-edges, so the use names
//! `X + s_u + omega − s_d`. Each value therefore occupies a *range* of
//! consecutive rotating registers, one per kernel iteration it stays live
//! — exactly the counting rule of Sec. 1.1.

use std::collections::HashMap;
use std::fmt::Write as _;

use ltsp_ir::{LoopIr, Opcode, RegClass, VReg};
use ltsp_machine::MachineModel;

use crate::regalloc::RegAllocError;
use crate::schedule::ModuloSchedule;

/// Concrete placement of one value in a rotating register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotatingRange {
    /// Register class.
    pub class: RegClass,
    /// Offset of the *write* register within the rotating area (the
    /// architectural number is `base_of(class) + offset`).
    pub offset: u32,
    /// Number of consecutive rotating registers the value's live
    /// instances occupy.
    pub span: u32,
}

/// A complete concrete register assignment for a scheduled kernel.
#[derive(Debug, Clone)]
pub struct RegisterAssignment {
    ranges: HashMap<VReg, RotatingRange>,
    statics: HashMap<VReg, u32>,
    stages: u32,
    used: [u32; 3],
}

/// First architectural register of each rotating area (Itanium: `r32`,
/// `f32`, and predicates `p16`, with stage predicates first).
fn rotating_base(class: RegClass) -> u32 {
    match class {
        RegClass::Gr => 32,
        RegClass::Fr => 32,
        RegClass::Pr => 16,
    }
}

impl RegisterAssignment {
    /// The rotating range assigned to a value, if it is loop-defined.
    pub fn range(&self, reg: VReg) -> Option<RotatingRange> {
        self.ranges.get(&reg).copied()
    }

    /// The architectural register a loop-invariant (live-in) value lives
    /// in (static, non-rotating).
    pub fn static_reg(&self, reg: VReg) -> Option<u32> {
        self.statics.get(&reg).copied()
    }

    /// Pipeline stages (and stage predicates `p16 .. p16+stages-1`).
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Rotating registers used in a class.
    pub fn rotating_used(&self, class: RegClass) -> u32 {
        match class {
            RegClass::Gr => self.used[0],
            RegClass::Fr => self.used[1],
            RegClass::Pr => self.used[2],
        }
    }

    /// The architectural name an instruction *writes* for its destination.
    pub fn def_name(&self, reg: VReg) -> Option<String> {
        let r = self.ranges.get(&reg)?;
        Some(arch_name(r.class, rotating_base(r.class) + r.offset))
    }

    /// The architectural name a *use* reads: the write register shifted by
    /// the back-edges crossed between definition and use.
    pub fn use_name(
        &self,
        reg: VReg,
        def_stage: u32,
        use_stage: u32,
        omega: u32,
    ) -> Option<String> {
        if let Some(r) = self.ranges.get(&reg) {
            let delta = use_stage + omega - def_stage.min(use_stage + omega);
            Some(arch_name(
                r.class,
                rotating_base(r.class) + r.offset + delta,
            ))
        } else {
            let n = self.statics.get(&reg)?;
            Some(arch_name(reg.class(), *n))
        }
    }
}

fn arch_name(class: RegClass, number: u32) -> String {
    match class {
        RegClass::Gr => format!("r{number}"),
        RegClass::Fr => format!("f{number}"),
        RegClass::Pr => format!("p{number}"),
    }
}

/// Assigns concrete rotating registers to every loop-defined value and
/// static registers to live-ins.
///
/// Values are packed first-fit in definition-time order; each value's
/// range length is `1 + max(use back-edge distance)`. Stage predicates
/// claim the first `stages` rotating predicates.
///
/// # Errors
///
/// Returns [`RegAllocError`] when a class's packed ranges exceed the
/// machine's rotating supply — the same condition
/// [`crate::allocate_rotating`] reports. Totals may differ by a register
/// or two: the counter measures lifetimes in cycles, the packer in
/// whole stage crossings.
pub fn assign_registers(
    lp: &LoopIr,
    sched: &ModuloSchedule,
    machine: &MachineModel,
) -> Result<RegisterAssignment, RegAllocError> {
    let stages = sched.stage_count();
    // Max back-edge distance per defined value.
    let mut def_stage: HashMap<VReg, u32> = HashMap::new();
    for inst in lp.insts() {
        if let Some(d) = inst.dst() {
            def_stage.insert(d, sched.stage(inst.id()));
        }
    }
    let mut max_delta: HashMap<VReg, u32> = HashMap::new();
    for inst in lp.insts() {
        let s_u = sched.stage(inst.id());
        for s in inst.reads() {
            if let Some(&s_d) = def_stage.get(&s.reg) {
                let delta = (s_u + s.omega).saturating_sub(s_d);
                let e = max_delta.entry(s.reg).or_insert(0);
                *e = (*e).max(delta);
            }
        }
    }

    // Pack per class, in definition order (deterministic).
    let mut cursors = [0u32; 3]; // GR, FR, PR value areas
    cursors[2] = stages; // stage predicates come first in the PR area
    let mut ranges = HashMap::new();
    for inst in lp.insts() {
        let Some(d) = inst.dst() else { continue };
        let span = max_delta.get(&d).copied().unwrap_or(0) + 1;
        let slot = match d.class() {
            RegClass::Gr => 0,
            RegClass::Fr => 1,
            RegClass::Pr => 2,
        };
        ranges.insert(
            d,
            RotatingRange {
                class: d.class(),
                offset: cursors[slot],
                span,
            },
        );
        cursors[slot] += span;
    }

    for class in RegClass::ALL {
        let slot = match class {
            RegClass::Gr => 0,
            RegClass::Fr => 1,
            RegClass::Pr => 2,
        };
        let needed = cursors[slot];
        let available = machine.registers().rotating(class);
        if needed > available {
            return Err(RegAllocError {
                class,
                needed,
                available,
            });
        }
    }

    // Live-ins go to static registers r8.., f8.. (outside the rotating
    // area, caller-visible).
    let mut statics = HashMap::new();
    let mut next_static = [8u32, 8, 6];
    for &r in lp.live_in() {
        let slot = match r.class() {
            RegClass::Gr => 0,
            RegClass::Fr => 1,
            RegClass::Pr => 2,
        };
        statics.insert(r, next_static[slot]);
        next_static[slot] += 1;
    }

    Ok(RegisterAssignment {
        ranges,
        statics,
        stages,
        used: cursors,
    })
}

/// Emits the loop *setup* code that precedes a pipelined kernel on
/// Itanium: the register-stack `alloc` sizing the rotating area, the loop
/// and epilog counters (`ar.lc` = trip − 1, `ar.ec` = stages), and the
/// rotating-predicate initialization that turns on stage 0 only.
pub fn emit_setup(assign: &RegisterAssignment, trip_reg: &str) -> String {
    let rot_gr = assign
        .rotating_used(RegClass::Gr)
        .next_multiple_of(8)
        .max(8);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  alloc    r2 = ar.pfs, 0, {rot_gr}, 0, {rot_gr}   // rotating GR area"
    );
    let _ = writeln!(out, "  adds     r3 = -1, {trip_reg}");
    let _ = writeln!(out, "  mov      ar.lc = r3                     // trip - 1");
    let _ = writeln!(
        out,
        "  mov      ar.ec = {}                     // epilog stages",
        assign.stages()
    );
    let _ = writeln!(
        out,
        "  mov      pr.rot = 1 << 16               // stage predicate p16 on"
    );
    out
}

/// The kernel-unroll factor **modulo variable expansion** would need on a
/// machine *without* rotating registers (the paper's Sec. 5 remark:
/// "Without rotating registers, this effect could only be achieved with
/// unrolling"): the kernel must be replicated until every value's live
/// instances have distinct architectural names, i.e. the maximum number
/// of kernel iterations any value stays live.
pub fn mve_unroll_factor(lp: &LoopIr, sched: &ModuloSchedule) -> u32 {
    let mut def_stage: HashMap<VReg, u32> = HashMap::new();
    for inst in lp.insts() {
        if let Some(d) = inst.dst() {
            def_stage.insert(d, sched.stage(inst.id()));
        }
    }
    let mut factor = 1u32;
    for inst in lp.insts() {
        let s_u = sched.stage(inst.id());
        for s in inst.srcs() {
            if let Some(&s_d) = def_stage.get(&s.reg) {
                factor = factor.max((s_u + s.omega).saturating_sub(s_d) + 1);
            }
        }
    }
    factor
}

fn mem_operand(lp: &LoopIr, inst: &ltsp_ir::Inst) -> String {
    inst.mem()
        .map(|m| format!("[{}]", lp.memref(m).name()))
        .unwrap_or_default()
}

/// Renders a scheduled kernel as Itanium-style assembly: one issue group
/// per kernel cycle (terminated by `;;`), stage predicates qualifying
/// every instruction, concrete rotating register names, and a `br.ctop`
/// back edge.
///
/// # Example
///
/// ```
/// use ltsp_ir::{DataClass, LoopBuilder};
/// use ltsp_machine::MachineModel;
/// use ltsp_pipeliner::{assign_registers, emit_kernel, pipeline_loop, PipelineOptions};
///
/// let mut b = LoopBuilder::new("ex");
/// let src = b.affine_ref("src", DataClass::Int, 0, 4, 4);
/// let dst = b.affine_ref("dst", DataClass::Int, 1 << 20, 4, 4);
/// let c = b.live_in_gr("c");
/// let v = b.load(src);
/// let s = b.add(v, c);
/// b.store(dst, s);
/// let lp = b.build()?;
/// let m = MachineModel::itanium2();
/// let p = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()).unwrap();
/// let asm = emit_kernel(&lp, &p.schedule, &assign_registers(&lp, &p.schedule, &m).unwrap());
/// assert!(asm.contains("br.ctop"));
/// assert!(asm.contains("(p16)"));
/// # Ok::<(), ltsp_ir::IrError>(())
/// ```
pub fn emit_kernel(lp: &LoopIr, sched: &ModuloSchedule, assign: &RegisterAssignment) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// kernel: II={}, stages={}, rotating GR={} FR={} PR={}",
        sched.ii(),
        sched.stage_count(),
        assign.rotating_used(RegClass::Gr),
        assign.rotating_used(RegClass::Fr),
        assign.rotating_used(RegClass::Pr),
    );
    let _ = writeln!(out, "L_kernel:");

    let mut def_stage: HashMap<VReg, u32> = HashMap::new();
    for inst in lp.insts() {
        if let Some(d) = inst.dst() {
            def_stage.insert(d, sched.stage(inst.id()));
        }
    }

    for (cycle, row) in sched.rows().iter().enumerate() {
        for slot in row {
            let inst = lp.inst(slot.inst);
            let qp = match inst.qp() {
                None => format!("(p{})", 16 + slot.stage),
                Some((q, neg)) => {
                    // The stage predicate is ANDed with the qualifying
                    // predicate (compilers materialize the conjunction).
                    let d_stage = def_stage.get(&q.reg).copied().unwrap_or(slot.stage);
                    let name = assign
                        .use_name(q.reg, d_stage, slot.stage, q.omega)
                        .unwrap_or_else(|| q.reg.to_string());
                    format!(
                        "(p{}&{}{name})",
                        16 + slot.stage,
                        if neg { "!" } else { "" }
                    )
                }
            };
            let dst = inst
                .dst()
                .and_then(|d| assign.def_name(d))
                .map(|n| format!("{n} = "))
                .unwrap_or_default();
            let srcs: Vec<String> = inst
                .srcs()
                .iter()
                .map(|s| {
                    let d_stage = def_stage.get(&s.reg).copied().unwrap_or(slot.stage);
                    assign
                        .use_name(s.reg, d_stage, slot.stage, s.omega)
                        .unwrap_or_else(|| format!("{}", s.reg))
                })
                .collect();
            let mem = mem_operand(lp, inst);
            let operands = match inst.op() {
                Opcode::Load(_) => format!("{dst}{mem}"),
                Opcode::Store(_) => format!("{mem} = {}", srcs.join(", ")),
                Opcode::Prefetch(level) => format!("{mem}, {level}"),
                _ => format!("{dst}{}", srcs.join(", ")),
            };
            let _ = writeln!(
                out,
                "  {qp:<6} {:<8} {operands:<28} // {} s{} c{cycle}",
                inst.op().mnemonic(),
                slot.inst,
                slot.stage,
            );
        }
        let _ = writeln!(out, "  ;;");
    }
    let _ = writeln!(out, "         br.ctop  L_kernel ;;");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{pipeline_loop, PipelineOptions};
    use ltsp_ir::{DataClass, LoopBuilder};

    fn running_example() -> LoopIr {
        let mut b = LoopBuilder::new("ex");
        let s = b.affine_ref("src", DataClass::Int, 0, 4, 4);
        let d = b.affine_ref("dst", DataClass::Int, 1 << 20, 4, 4);
        let c = b.live_in_gr("r9");
        let v = b.load(s);
        let sum = b.add(v, c);
        b.store(d, sum);
        b.build().unwrap()
    }

    #[test]
    fn fig3_register_chains() {
        // The paper's Fig. 3: the load writes r32, the add reads r33 (one
        // rotation later) and writes r34, the store reads r35.
        let m = MachineModel::itanium2();
        let lp = running_example();
        let p = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()).unwrap();
        assert_eq!(p.schedule.ii(), 1);
        let a = assign_registers(&lp, &p.schedule, &m).unwrap();

        let v = lp.insts()[0].dst().unwrap(); // load value
        let s = lp.insts()[1].dst().unwrap(); // add value
        let rv = a.range(v).unwrap();
        let rs = a.range(s).unwrap();
        // Load def at stage 0, read by add at stage 1 -> delta 1, span 2.
        assert_eq!(rv.span, 2);
        assert_eq!(rs.span, 2);
        assert_eq!(a.def_name(v).unwrap(), "r32");
        assert_eq!(a.use_name(v, 0, 1, 0).unwrap(), "r33");
        assert_eq!(a.def_name(s).unwrap(), "r34");
        assert_eq!(a.use_name(s, 1, 2, 0).unwrap(), "r35");
    }

    #[test]
    fn assignment_matches_counting_allocator() {
        // The packed totals equal allocate_rotating's per-class sums.
        let m = MachineModel::itanium2();
        let lp = running_example();
        let p = pipeline_loop(
            &lp,
            &m,
            &|_| Some(ltsp_ir::LatencyHint::L3),
            &PipelineOptions::default(),
        )
        .unwrap();
        let counted = crate::allocate_rotating(&lp, &p.schedule, &m).unwrap();
        let assigned = assign_registers(&lp, &p.schedule, &m).unwrap();
        let close = |a: u32, b: u32| a.abs_diff(b) <= 2;
        assert!(
            close(assigned.rotating_used(RegClass::Gr), counted.rotating_gr),
            "{} vs {}",
            assigned.rotating_used(RegClass::Gr),
            counted.rotating_gr
        );
        assert!(close(
            assigned.rotating_used(RegClass::Pr),
            counted.rotating_pr
        ));
    }

    #[test]
    fn ranges_are_disjoint() {
        let m = MachineModel::itanium2();
        let lp = ltsp_workloads_free::mcfish();
        let p = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()).unwrap();
        let a = assign_registers(&lp, &p.schedule, &m).unwrap();
        let mut seen: Vec<(RegClass, u32)> = Vec::new();
        for inst in lp.insts() {
            if let Some(d) = inst.dst() {
                let r = a.range(d).unwrap();
                for off in r.offset..r.offset + r.span {
                    assert!(
                        !seen.contains(&(r.class, off)),
                        "overlap at {:?} {off}",
                        r.class
                    );
                    seen.push((r.class, off));
                }
            }
        }
    }

    // A tiny local stand-in to avoid a dev-dependency cycle in unit tests.
    mod ltsp_workloads_free {
        use ltsp_ir::{DataClass, LoopBuilder, LoopIr};

        pub fn mcfish() -> LoopIr {
            let mut b = LoopBuilder::new("mcfish");
            let node = b.chase_ref("node", 0, 64, 1 << 22, 0.1);
            let fld = b.deref_ref("node->f", DataClass::Int, node, 128, 1 << 22, 8);
            let _n = b.load(node);
            let f = b.load(fld);
            let acc = b.add_reduce(f);
            let pot = b.deref_ref("node->p", DataClass::Int, node, 16, 1 << 22, 8);
            b.store(pot, acc);
            b.build().unwrap()
        }
    }

    #[test]
    fn emitted_assembly_has_the_right_shape() {
        let m = MachineModel::itanium2();
        let lp = running_example();
        let p = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()).unwrap();
        let a = assign_registers(&lp, &p.schedule, &m).unwrap();
        let asm = emit_kernel(&lp, &p.schedule, &a);
        assert!(asm.contains("L_kernel:"), "{asm}");
        assert!(asm.contains("(p16) "), "{asm}");
        assert!(asm.contains("(p18) "), "three stage predicates: {asm}");
        assert!(asm.contains("br.ctop"), "{asm}");
        assert!(asm.contains("ld"), "{asm}");
        assert!(asm.contains("[src]"), "{asm}");
        // Stops delimit issue groups.
        assert!(asm.matches(";;").count() >= 2, "{asm}");
    }

    #[test]
    fn setup_code_contains_loop_counters() {
        let m = MachineModel::itanium2();
        let lp = running_example();
        let p = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()).unwrap();
        let a = assign_registers(&lp, &p.schedule, &m).unwrap();
        let setup = emit_setup(&a, "r14");
        assert!(setup.contains("ar.lc"), "{setup}");
        assert!(setup.contains("ar.ec = 3"), "{setup}");
        assert!(setup.contains("pr.rot"), "{setup}");
        assert!(setup.contains("alloc"), "{setup}");
    }

    #[test]
    fn mve_factor_grows_with_boosting() {
        // Without rotation, the unroll factor for the boosted kernel
        // explodes with the scheduled latency — the paper's Sec. 5 point
        // about why rotation makes clustering cheap.
        let m = MachineModel::itanium2();
        let lp = running_example();
        let base = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()).unwrap();
        let boost = pipeline_loop(
            &lp,
            &m,
            &|_| Some(ltsp_ir::LatencyHint::L3),
            &PipelineOptions::default(),
        )
        .unwrap();
        let f_base = mve_unroll_factor(&lp, &base.schedule);
        let f_boost = mve_unroll_factor(&lp, &boost.schedule);
        assert!(f_base >= 2);
        assert!(
            f_boost > f_base * 3,
            "boosting must inflate the MVE factor: {f_base} -> {f_boost}"
        );
    }

    #[test]
    fn overflow_reported_like_the_counting_allocator() {
        use ltsp_machine::RegisterFiles;
        let m = MachineModel::itanium2();
        let tight = MachineModel::new(
            *m.issue(),
            *m.latencies(),
            *m.caches(),
            RegisterFiles {
                rotating_gr: 2,
                ..*m.registers()
            },
        );
        let lp = running_example();
        let p = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()).unwrap();
        let err = assign_registers(&lp, &p.schedule, &tight).unwrap_err();
        assert_eq!(err.class, RegClass::Gr);
    }
}
