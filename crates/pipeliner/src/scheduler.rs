//! Iterative modulo scheduling (Rau, MICRO-27) and the acyclic fallback.

use std::cell::RefCell;

use ltsp_ddg::{Ddg, MinDistSolver};
use ltsp_ir::{InstId, LoopIr};
use ltsp_machine::MachineModel;

use crate::mrt::Mrt;
use crate::schedule::ModuloSchedule;

/// Why an attempt to schedule at a particular II failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleFailure {
    /// A recurrence cycle makes this II infeasible outright.
    InfeasibleIi,
    /// The eviction budget ran out before a fixed point was reached.
    BudgetExhausted,
}

impl std::fmt::Display for ScheduleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleFailure::InfeasibleIi => write!(f, "II infeasible for recurrences"),
            ScheduleFailure::BudgetExhausted => write!(f, "scheduling budget exhausted"),
        }
    }
}

impl std::error::Error for ScheduleFailure {}

/// Iterative modulo scheduler over a prepared dependence graph.
///
/// The DDG's edge latencies already reflect the latency-tolerance policy
/// (non-critical hinted loads carry their boosted latencies), so the
/// scheduler itself is policy-agnostic.
#[derive(Debug)]
pub struct ModuloScheduler<'a> {
    lp: &'a LoopIr,
    machine: &'a MachineModel,
    ddg: &'a Ddg,
    /// Buffers and the incremental MinDist solver, reused across every
    /// `schedule_at` call (the II escalation ladder calls it many times
    /// per loop). Interior mutability keeps `schedule_at(&self)` — the
    /// scratch never leaks into results.
    scratch: RefCell<SchedScratch>,
}

/// Reusable per-scheduler working state: the O(n³) part of MinDist is
/// paid once (on the first attempt), and the per-attempt vectors and MRT
/// keep their allocations across II escalation.
#[derive(Debug, Default)]
struct SchedScratch {
    solver: Option<MinDistSolver>,
    heights: Vec<i64>,
    time: Vec<Option<i64>>,
    last_time: Vec<i64>,
    mrt: Option<Mrt>,
    /// Lazy-deletion priority queue over unscheduled ops, ordered
    /// exactly like the original linear scan: height descending, id
    /// ascending. Entries for ops that got scheduled meanwhile are
    /// skipped on pop; unscheduling pushes a fresh entry.
    queue: std::collections::BinaryHeap<(i64, std::cmp::Reverse<usize>)>,
}

impl<'a> ModuloScheduler<'a> {
    /// Creates a scheduler for one loop.
    pub fn new(lp: &'a LoopIr, machine: &'a MachineModel, ddg: &'a Ddg) -> Self {
        ModuloScheduler {
            lp,
            machine,
            ddg,
            scratch: RefCell::new(SchedScratch::default()),
        }
    }

    /// Attempts to find a kernel schedule at exactly `ii`.
    ///
    /// Height-based priority: operations feeding the longest dependence
    /// chains schedule first. Each operation gets its earliest start from
    /// already-scheduled predecessors, then the II consecutive slots from
    /// there are probed in the reservation table; if none fits, the
    /// operation is placed by force (evicting the most recently placed
    /// conflicting occupant, preferring a relocatable A-class one — see
    /// [`Mrt::place_forced`]) at `max(estart, previous placement + 1)` to
    /// guarantee progress. Dependence-violated successors are
    /// unscheduled. The total number of placements is bounded by
    /// `budget_factor × n`; an empty loop body yields an empty schedule
    /// even at budget 0.
    ///
    /// # Errors
    ///
    /// [`ScheduleFailure::InfeasibleIi`] when a recurrence exceeds `ii`;
    /// [`ScheduleFailure::BudgetExhausted`] when placement thrashes.
    pub fn schedule_at(
        &self,
        ii: u32,
        budget_factor: u32,
    ) -> Result<ModuloSchedule, ScheduleFailure> {
        if !self.ddg.feasible_ii(ii) {
            return Err(ScheduleFailure::InfeasibleIi);
        }
        let n = self.lp.insts().len();
        if n == 0 {
            // Unreachable through the IR (validation rejects empty
            // loops), but the zero budget below must not misreport an
            // empty body as exhaustion.
            return Ok(ModuloSchedule::new(ii, Vec::new()));
        }
        let mut scratch = self.scratch.borrow_mut();
        let SchedScratch {
            solver,
            heights,
            time,
            last_time,
            mrt,
            queue,
        } = &mut *scratch;
        let solver = solver.get_or_insert_with(|| MinDistSolver::new(self.ddg));
        solver.heights_into(self.ddg, ii, heights);

        time.clear();
        time.resize(n, None);
        last_time.clear();
        last_time.resize(n, -1);
        let mrt = match mrt {
            Some(m) => {
                m.reset(ii, *self.machine.issue());
                m
            }
            None => mrt.insert(Mrt::new(ii, *self.machine.issue())),
        };
        let mut budget = u64::from(budget_factor) * n as u64;
        queue.clear();
        queue.extend((0..n).map(|i| (heights[i], std::cmp::Reverse(i))));

        loop {
            // Highest-priority unscheduled op (height desc, id asc).
            // Scheduled ops may have stale queue entries; skip them.
            let next = loop {
                match queue.pop() {
                    Some((_, std::cmp::Reverse(i))) if time[i].is_some() => continue,
                    Some((_, std::cmp::Reverse(i))) => break Some(i),
                    None => break None,
                }
            };
            let Some(op_idx) = next else {
                break;
            };
            if budget == 0 {
                return Err(ScheduleFailure::BudgetExhausted);
            }
            budget -= 1;

            let op = InstId(op_idx as u32);
            let class = self.lp.inst(op).unit_class();

            // Earliest start from scheduled predecessors.
            let mut estart: i64 = 0;
            for e in self.ddg.preds(op) {
                if e.from == op {
                    continue; // self-recurrences are honored by feasible_ii
                }
                if let Some(tp) = time[e.from.index()] {
                    let lb = tp + i64::from(e.latency) - i64::from(ii) * i64::from(e.omega);
                    estart = estart.max(lb);
                }
            }

            // Probe II consecutive slots, then force.
            let mut placed_at: Option<i64> = None;
            for t in estart..estart + i64::from(ii) {
                if mrt.fits(t, class) {
                    placed_at = Some(t);
                    break;
                }
            }
            let t = placed_at.unwrap_or_else(|| estart.max(last_time[op_idx] + 1));

            if let Some(victim) = mrt.place_forced(op, t, class) {
                debug_assert!(
                    time[victim.index()].is_some(),
                    "evicted instruction was scheduled"
                );
                time[victim.index()] = None;
                queue.push((heights[victim.index()], std::cmp::Reverse(victim.index())));
            }
            time[op_idx] = Some(t);
            last_time[op_idx] = t;

            // Unschedule successors whose dependence is now violated.
            for e in self.ddg.succs(op) {
                if e.to == op {
                    continue;
                }
                if let Some(ts) = time[e.to.index()] {
                    let lb = t + i64::from(e.latency) - i64::from(ii) * i64::from(e.omega);
                    if lb > ts {
                        mrt.remove(e.to, ts);
                        time[e.to.index()] = None;
                        queue.push((heights[e.to.index()], std::cmp::Reverse(e.to.index())));
                    }
                }
            }
        }

        let times: Vec<i64> = time.iter().map(|t| t.expect("all scheduled")).collect();
        debug_assert!(self.verify(ii, &times), "schedule violates dependences");
        Ok(ModuloSchedule::new(ii, times))
    }

    /// Checks every dependence edge under the modulo constraint.
    fn verify(&self, ii: u32, times: &[i64]) -> bool {
        self.ddg.edges().iter().all(|e| {
            let lhs = times[e.from.index()] + i64::from(e.latency);
            let rhs = times[e.to.index()] + i64::from(ii) * i64::from(e.omega);
            lhs <= rhs
        })
    }
}

/// Greedy acyclic list schedule used when pipelining is rejected: the loop
/// body is scheduled once, respecting same-iteration dependences and issue
/// resources, and iterations do not overlap. Returned as a [`ModuloSchedule`]
/// whose II equals the schedule length (a single-stage "pipeline"), which
/// the simulator executes as an ordinary, non-pipelined loop.
pub fn acyclic_schedule(lp: &LoopIr, machine: &MachineModel, ddg: &Ddg) -> ModuloSchedule {
    let n = lp.insts().len();
    // Horizon: generous upper bound on the schedule length.
    let horizon: i64 = ddg
        .edges()
        .iter()
        .map(|e| i64::from(e.latency))
        .sum::<i64>()
        + n as i64
        + 1;
    let mut mrt = Mrt::new(horizon as u32, *machine.issue());
    let mut time: Vec<Option<i64>> = vec![None; n];

    // Repeatedly place any op whose same-iteration predecessors are done
    // (the IR validator guarantees omega-0 acyclicity).
    let mut remaining = n;
    while remaining > 0 {
        let mut progressed = false;
        for idx in 0..n {
            if time[idx].is_some() {
                continue;
            }
            let op = InstId(idx as u32);
            let ready = ddg
                .preds(op)
                .filter(|e| e.omega == 0 && e.from != op)
                .all(|e| time[e.from.index()].is_some());
            if !ready {
                continue;
            }
            let mut estart: i64 = 0;
            for e in ddg.preds(op) {
                if e.omega == 0 && e.from != op {
                    let tp = time[e.from.index()].expect("checked ready");
                    estart = estart.max(tp + i64::from(e.latency));
                }
            }
            let class = lp.inst(op).unit_class();
            let mut t = estart;
            while !mrt.fits(t, class) {
                t += 1;
            }
            assert!(mrt.place(op, t, class), "fits() said the slot was free");
            time[idx] = Some(t);
            remaining -= 1;
            progressed = true;
        }
        assert!(progressed, "omega-0 dependences are acyclic by validation");
    }

    let times: Vec<i64> = time.into_iter().map(|t| t.expect("all placed")).collect();
    let len = times
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            // Include the producing latency so the loop "length" covers
            // in-flight results (coarse; the simulator measures reality).
            let lat: i64 = ddg
                .succs(InstId(i as u32))
                .filter(|e| e.omega == 0)
                .map(|e| i64::from(e.latency))
                .max()
                .unwrap_or(1);
            t + lat.max(1)
        })
        .max()
        .unwrap_or(1);
    ModuloSchedule::new(len.max(1) as u32, times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_ir::{DataClass, LoopBuilder};

    fn ddg_with(lp: &LoopIr, m: &MachineModel, boost: u32) -> Ddg {
        Ddg::build_with_load_floor(lp, m, boost)
    }

    fn running_example() -> LoopIr {
        let mut b = LoopBuilder::new("ex");
        let s = b.affine_ref("s", DataClass::Int, 0, 4, 4);
        let d = b.affine_ref("d", DataClass::Int, 1 << 20, 4, 4);
        let c = b.live_in_gr("c");
        let v = b.load(s);
        let sum = b.add(v, c);
        b.store(d, sum);
        b.build().unwrap()
    }

    #[test]
    fn running_example_schedules_at_ii_1() {
        let m = MachineModel::itanium2();
        let lp = running_example();
        let ddg = ddg_with(&lp, &m, 0);
        let sched = ModuloScheduler::new(&lp, &m, &ddg)
            .schedule_at(1, 8)
            .unwrap();
        assert_eq!(sched.ii(), 1);
        // ld at 0, add at 1, st at 2 -> 3 stages (paper Fig. 2/3).
        assert_eq!(sched.stage_count(), 3);
    }

    #[test]
    fn boosted_load_grows_stages_not_ii() {
        // Scheduling the load for latency 3 (d = 2) gives 5 stages at the
        // same II (paper Fig. 4).
        let m = MachineModel::itanium2();
        let lp = running_example();
        let ddg = ddg_with(&lp, &m, 3);
        let sched = ModuloScheduler::new(&lp, &m, &ddg)
            .schedule_at(1, 8)
            .unwrap();
        assert_eq!(sched.ii(), 1);
        assert_eq!(sched.stage_count(), 5);
    }

    #[test]
    fn infeasible_ii_rejected() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("red");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x);
        let _ = b.fadd_reduce(v);
        let lp = b.build().unwrap();
        let ddg = ddg_with(&lp, &m, 0);
        let sch = ModuloScheduler::new(&lp, &m, &ddg);
        assert_eq!(
            sch.schedule_at(3, 8).unwrap_err(),
            ScheduleFailure::InfeasibleIi
        );
        assert!(sch.schedule_at(4, 8).is_ok());
    }

    #[test]
    fn resource_bound_loop_respects_mrt() {
        // 6 independent loads on 2 M slots: II 3 works, II 2 cannot.
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("mem");
        for k in 0..6u64 {
            let r = b.affine_ref(&format!("p{k}"), DataClass::Int, k << 22, 4, 4);
            let _ = b.load(r);
        }
        let lp = b.build().unwrap();
        let ddg = ddg_with(&lp, &m, 0);
        let sch = ModuloScheduler::new(&lp, &m, &ddg);
        let s3 = sch.schedule_at(3, 8).unwrap();
        assert_eq!(s3.ii(), 3);
        // At II 2 the MRT can never hold 6 M ops; budget runs out.
        assert_eq!(
            sch.schedule_at(2, 8).unwrap_err(),
            ScheduleFailure::BudgetExhausted
        );
    }

    #[test]
    fn schedule_respects_all_edges_property() {
        // A denser loop: dot-product with two streams and a reduction.
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("dot");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let y = b.affine_ref("y", DataClass::Fp, 1 << 24, 8, 8);
        let vx = b.load(x);
        let vy = b.load(y);
        let _acc = b.fma_reduce(vx, vy);
        let lp = b.build().unwrap();
        let ddg = ddg_with(&lp, &m, 6);
        let sch = ModuloScheduler::new(&lp, &m, &ddg);
        // RecMII = 4 (fma self-dep); schedule there.
        let s = sch.schedule_at(4, 8).unwrap();
        for e in ddg.edges() {
            assert!(
                s.time(e.from) + i64::from(e.latency) <= s.time(e.to) + i64::from(4 * e.omega),
                "edge {:?} violated",
                e
            );
        }
    }

    #[test]
    fn empty_loops_cannot_reach_the_scheduler() {
        // The `budget = budget_factor × n = 0` edge case is unreachable
        // through the IR: validation rejects an empty body outright.
        let b = LoopBuilder::new("empty");
        assert_eq!(b.build().unwrap_err(), ltsp_ir::IrError::EmptyLoop);
        // And the defensive path yields an empty schedule, not
        // BudgetExhausted, if a synthetic caller ever hits it.
        let m = MachineModel::itanium2();
        let lp = running_example();
        let ddg = ddg_with(&lp, &m, 0);
        let sch = ModuloScheduler::new(&lp, &m, &ddg);
        let s = sch.schedule_at(1, 0);
        assert_eq!(s.unwrap_err(), ScheduleFailure::BudgetExhausted);
    }

    #[test]
    fn trivial_loop_schedules_with_minimal_budget() {
        // A single-instruction body must schedule on the first placement:
        // budget_factor 1 gives budget 1 = exactly enough.
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("one");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let _ = b.load(x);
        let lp = b.build().unwrap();
        let ddg = ddg_with(&lp, &m, 0);
        let s = ModuloScheduler::new(&lp, &m, &ddg)
            .schedule_at(1, 1)
            .unwrap();
        assert_eq!(s.ii(), 1);
        assert_eq!(s.time(InstId(0)), 0);
    }

    #[test]
    fn repeated_schedule_at_calls_are_deterministic() {
        // The scratch-reusing scheduler must give identical results on
        // repeated and out-of-order II attempts (escalation replays).
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("dot");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let y = b.affine_ref("y", DataClass::Fp, 1 << 24, 8, 8);
        let vx = b.load(x);
        let vy = b.load(y);
        let _acc = b.fma_reduce(vx, vy);
        let lp = b.build().unwrap();
        let ddg = ddg_with(&lp, &m, 6);
        let warm = ModuloScheduler::new(&lp, &m, &ddg);
        for ii in [4u32, 6, 5, 4, 8, 4] {
            let fresh = ModuloScheduler::new(&lp, &m, &ddg);
            let a = warm.schedule_at(ii, 8).unwrap();
            let b = fresh.schedule_at(ii, 8).unwrap();
            assert_eq!(a.ii(), b.ii(), "ii={ii}");
            let at: Vec<i64> = (0..3).map(|i| a.time(InstId(i))).collect();
            let bt: Vec<i64> = (0..3).map(|i| b.time(InstId(i))).collect();
            assert_eq!(at, bt, "ii={ii}: warm scratch diverged from fresh");
        }
    }

    #[test]
    fn acyclic_fallback_is_dependence_correct() {
        let m = MachineModel::itanium2();
        let lp = running_example();
        let ddg = ddg_with(&lp, &m, 0);
        let s = acyclic_schedule(&lp, &m, &ddg);
        assert_eq!(s.stage_count(), 1, "no overlap in the fallback");
        // ld(1) -> add at >= 1 -> st at >= 2.
        assert!(s.time(InstId(1)) > s.time(InstId(0)));
        assert!(s.time(InstId(2)) > s.time(InstId(1)));
        assert!(s.ii() >= 3);
    }
}
