//! The top-level pipelining driver with the paper's fallback ladder.

use std::error::Error;
use std::fmt;

use ltsp_ddg::Ddg;
use ltsp_ir::{InstId, LatencyHint, LoopIr, Opcode};
use ltsp_machine::{LatencyQuery, MachineModel};

use ltsp_telemetry::phase::{time_opt, Phase, PhaseTimer};
use ltsp_telemetry::{Event, Telemetry};

use crate::criticality::{classify_loads_traced, LoadClass, LoadClassification};
use crate::regalloc::{allocate_rotating, RegAllocation};
use crate::schedule::ModuloSchedule;
use crate::scheduler::{acyclic_schedule, ModuloScheduler};

/// Tunables for the pipelining driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Eviction budget per scheduling attempt, as a multiple of the number
    /// of instructions.
    pub budget_factor: u32,
    /// Cap on enumerated recurrence cycles during criticality analysis.
    pub cycle_cap: usize,
    /// How far above Min II the driver escalates before declaring
    /// pipelining unprofitable.
    pub max_ii_slack: u32,
    /// Enable the balanced-recurrence extension: distribute a violating
    /// cycle's slack among its loads (partial boosts) instead of marking
    /// them all critical. Off by default (the paper's algorithm).
    pub balance_cycle_slack: bool,
    /// Enable data speculation (paper Sec. 3.3: one of the optimizations
    /// "done to reduce the recurrence cycle lengths" when the Recurrence
    /// II exceeds the Resource II): memory-flow edges on constraining
    /// cycles are broken by issuing the load as an advanced load
    /// (`ld.a`/`chk.a`); the recovery check's cost is not modeled (checks
    /// are cheap A-class ops and mis-speculation is assumed rare).
    pub data_speculation: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            budget_factor: 8,
            cycle_cap: 10_000,
            max_ii_slack: 16,
            balance_cycle_slack: false,
            data_speculation: false,
        }
    }
}

/// Statistics of one pipelining run (feeds the paper's Sec. 3.3/4.5
/// numbers: extra scheduling attempts, register usage, boosts applied).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineStats {
    /// Resource II lower bound.
    pub res_mii: u32,
    /// Recurrence II lower bound (base latencies).
    pub rec_mii: u32,
    /// `max(res_mii, rec_mii)`.
    pub min_ii: u32,
    /// Modulo-scheduling attempts performed (each II × latency setting).
    pub schedule_attempts: u32,
    /// True when register allocation forced the driver to drop the
    /// latency boosts (first rung of the fallback ladder).
    pub dropped_boosts: bool,
    /// Loads scheduled at a boosted latency in the final schedule.
    pub boosted_loads: usize,
    /// Loads marked critical by the recurrence analysis.
    pub critical_loads: usize,
    /// Memory-flow dependences broken by data speculation.
    pub speculated_edges: usize,
}

/// A successfully pipelined loop.
#[derive(Debug, Clone)]
pub struct PipelinedLoop {
    /// The kernel schedule.
    pub schedule: ModuloSchedule,
    /// Rotating/static register usage.
    pub regs: RegAllocation,
    /// Final per-load classification (reflects any dropped boosts).
    pub classification: LoadClassification,
    /// Run statistics.
    pub stats: PipelineStats,
}

impl PipelinedLoop {
    /// The scheduling latency the kernel assumed for each load —
    /// `None` for non-loads. Useful for analysis and tests.
    pub fn scheduled_load_latency(
        &self,
        lp: &LoopIr,
        machine: &MachineModel,
        inst: InstId,
    ) -> Option<u32> {
        match lp.inst(inst).op() {
            Opcode::Load(dc) => Some(machine.load_latency(dc, self.classification.query(inst))),
            _ => None,
        }
    }
}

/// Pipelining was rejected; the caller should fall back to the acyclic
/// schedule (see [`acyclic_schedule`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineError {
    /// Scheduling attempts consumed before giving up.
    pub attempts: u32,
    /// The Min II that could not be realized within the II budget.
    pub min_ii: u32,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pipelining unprofitable after {} attempts from Min II {}",
            self.attempts, self.min_ii
        )
    }
}

impl Error for PipelineError {}

fn build_ddg<'a>(
    lp: &'a LoopIr,
    machine: &'a MachineModel,
    query: impl Fn(InstId) -> LatencyQuery + 'a,
) -> Ddg {
    Ddg::build(lp, machine, &move |id| {
        if let Opcode::Load(dc) = lp.inst(id).op() {
            machine.load_latency(dc, query(id))
        } else {
            0
        }
    })
}

/// Pipelines a loop with latency-tolerant scheduling (paper Sec. 3.3).
///
/// `hint_of` supplies the expected-latency hint per load under the active
/// policy (HLO hints, blanket settings, or none for the baseline).
///
/// Procedure:
/// 1. Resource II and base-latency Recurrence II give Min II.
/// 2. Criticality analysis decides which loads may be boosted.
/// 3. Modulo scheduling runs at increasing II; after each successful
///    schedule, rotating register allocation is attempted.
/// 4. On allocation failure the boosts are dropped at the same II; if that
///    also fails the II is escalated with boosts kept off, matching the
///    paper's ladder ("first reduce the non-critical load latencies …,
///    then continue to iterate at successively higher IIs").
///
/// # Errors
///
/// [`PipelineError`] when no schedule within `min_ii + max_ii_slack` (also
/// capped at the acyclic schedule length) both schedules and allocates.
///
/// # Example
///
/// ```
/// use ltsp_ir::{DataClass, LatencyHint, LoopBuilder};
/// use ltsp_machine::MachineModel;
/// use ltsp_pipeliner::{pipeline_loop, PipelineOptions};
///
/// let mut b = LoopBuilder::new("ex");
/// let src = b.affine_ref("src", DataClass::Int, 0, 4, 4);
/// let dst = b.affine_ref("dst", DataClass::Int, 1 << 20, 4, 4);
/// let c = b.live_in_gr("c");
/// let v = b.load(src);
/// let s = b.add(v, c);
/// b.store(dst, s);
/// let lp = b.build()?;
///
/// let m = MachineModel::itanium2();
/// // Blanket L3 hints: the load is non-critical, so the II stays at 1
/// // and latency-buffer stages absorb the scheduled latency (Fig. 4).
/// let p = pipeline_loop(&lp, &m, &|_| Some(LatencyHint::L3), &PipelineOptions::default())
///     .expect("pipelines");
/// assert_eq!(p.schedule.ii(), 1);
/// assert_eq!(p.stats.boosted_loads, 1);
/// assert!(p.schedule.stage_count() > 3);
/// # Ok::<(), ltsp_ir::IrError>(())
/// ```
pub fn pipeline_loop(
    lp: &LoopIr,
    machine: &MachineModel,
    hint_of: &dyn Fn(InstId) -> Option<LatencyHint>,
    opts: &PipelineOptions,
) -> Result<PipelinedLoop, PipelineError> {
    pipeline_loop_traced(lp, machine, hint_of, opts, &Telemetry::disabled())
}

fn failure_outcome(f: &crate::scheduler::ScheduleFailure) -> &'static str {
    match f {
        crate::scheduler::ScheduleFailure::InfeasibleIi => "infeasible",
        crate::scheduler::ScheduleFailure::BudgetExhausted => "budget-exhausted",
    }
}

fn class_name(c: ltsp_ir::RegClass) -> &'static str {
    match c {
        ltsp_ir::RegClass::Gr => "GR",
        ltsp_ir::RegClass::Fr => "FR",
        ltsp_ir::RegClass::Pr => "PR",
    }
}

/// [`pipeline_loop`] with the driver's decision trail recorded on a
/// telemetry sink: per-load criticality verdicts, every scheduling attempt
/// with its outcome, II escalations, and the register-pressure fallbacks
/// of the ladder.
pub fn pipeline_loop_traced(
    lp: &LoopIr,
    machine: &MachineModel,
    hint_of: &dyn Fn(InstId) -> Option<LatencyHint>,
    opts: &PipelineOptions,
    tel: &Telemetry,
) -> Result<PipelinedLoop, PipelineError> {
    pipeline_loop_phased(lp, machine, hint_of, opts, tel, None)
}

/// [`pipeline_loop_traced`] with optional per-phase wall-clock
/// attribution: DDG construction and MII analysis (`ddg`), criticality
/// classification and the acyclic profitability ceiling (`mrt`), every
/// modulo-scheduling attempt across II escalations (`sched`), and
/// rotating register allocation (`regalloc`). Timing is observational —
/// results are identical with or without a timer.
pub fn pipeline_loop_phased(
    lp: &LoopIr,
    machine: &MachineModel,
    hint_of: &dyn Fn(InstId) -> Option<LatencyHint>,
    opts: &PipelineOptions,
    tel: &Telemetry,
    phases: Option<&PhaseTimer>,
) -> Result<PipelinedLoop, PipelineError> {
    let (ddg_base, res_mii, rec_mii, speculated) = time_opt(phases, Phase::Ddg, || {
        let mut ddg_base = Ddg::build_with_load_floor(lp, machine, 0);
        let res_mii = machine.res_mii(lp);
        let mut rec_mii = ddg_base.rec_mii();

        // Data speculation (Sec. 3.3): when recurrences dominate, break the
        // memory-flow edges sitting on cycles that force the II above the
        // Resource II.
        let mut speculated: Vec<(InstId, InstId, u32)> = Vec::new();
        if opts.data_speculation && rec_mii > res_mii {
            for cycle in ddg_base.recurrence_cycles(opts.cycle_cap) {
                let summary = ddg_base.cycle_summary(&cycle, &|_| None);
                if summary.implied_ii <= res_mii {
                    continue;
                }
                for &ei in &cycle.edges {
                    let e = ddg_base.edges()[ei];
                    if e.kind == ltsp_ddg::DepKind::MemFlow {
                        let key = (e.from, e.to, e.omega);
                        if !speculated.contains(&key) {
                            speculated.push(key);
                        }
                    }
                }
            }
            if !speculated.is_empty() {
                let spec = speculated.clone();
                ddg_base.retain_edges(|e| {
                    e.kind != ltsp_ddg::DepKind::MemFlow || !spec.contains(&(e.from, e.to, e.omega))
                });
                rec_mii = ddg_base.rec_mii();
            }
        }
        (ddg_base, res_mii, rec_mii, speculated)
    });
    let min_ii = res_mii.max(rec_mii);

    let cls = time_opt(phases, Phase::Mrt, || {
        classify_loads_traced(
            lp,
            machine,
            &ddg_base,
            hint_of,
            opts.cycle_cap,
            opts.balance_cycle_slack,
            tel,
        )
    });
    let critical_loads = lp
        .insts()
        .iter()
        .filter(|i| cls.class(i.id()) == Some(LoadClass::Critical))
        .count();

    // Profitability ceiling: beyond the acyclic schedule length, the global
    // code scheduler does at least as well without pipelining overhead.
    let acyclic_len = time_opt(phases, Phase::Mrt, || {
        acyclic_schedule(lp, machine, &ddg_base).ii()
    });
    let max_ii = (min_ii + opts.max_ii_slack).min(acyclic_len.max(min_ii));

    let mut attempts = 0u32;
    let mut stats = PipelineStats {
        res_mii,
        rec_mii,
        min_ii,
        schedule_attempts: 0,
        dropped_boosts: false,
        boosted_loads: cls.boosted_count(),
        critical_loads,
        speculated_edges: speculated.len(),
    };

    let mut base_phase_start = min_ii;
    if cls.boosted_count() > 0 {
        let ddg_boosted = time_opt(phases, Phase::Ddg, || {
            let mut ddg_boosted = build_ddg(lp, machine, |id| cls.query(id));
            if !speculated.is_empty() {
                let spec = speculated.clone();
                ddg_boosted.retain_edges(|e| {
                    e.kind != ltsp_ddg::DepKind::MemFlow || !spec.contains(&(e.from, e.to, e.omega))
                });
            }
            ddg_boosted
        });
        let scheduler = ModuloScheduler::new(lp, machine, &ddg_boosted);
        let mut alloc_failed_at: Option<u32> = None;
        let base_scheduler = ModuloScheduler::new(lp, machine, &ddg_base);
        let mut failed_ii: Option<u32> = None;
        for ii in min_ii..=max_ii {
            if let Some(from_ii) = failed_ii {
                if tel.is_enabled() {
                    tel.emit(Event::IiEscalation {
                        loop_name: lp.name().to_string(),
                        from_ii,
                        to_ii: ii,
                        phase: "boosted",
                    });
                }
            }
            attempts += 1;
            let sched = match time_opt(phases, Phase::Sched, || {
                scheduler.schedule_at(ii, opts.budget_factor)
            }) {
                Ok(sched) => {
                    if tel.is_enabled() {
                        tel.emit(Event::ScheduleAttempt {
                            loop_name: lp.name().to_string(),
                            ii,
                            latencies: "boosted",
                            outcome: "scheduled",
                        });
                    }
                    sched
                }
                Err(fail) => {
                    if tel.is_enabled() {
                        tel.emit(Event::ScheduleAttempt {
                            loop_name: lp.name().to_string(),
                            ii,
                            latencies: "boosted",
                            outcome: failure_outcome(&fail),
                        });
                    }
                    // The boosted problem is harder to place; if the *base*
                    // latencies schedule at this II, escalating would trade a
                    // permanently higher II for the boosts — containment says
                    // drop the boosts instead.
                    attempts += 1;
                    let base_res = time_opt(phases, Phase::Sched, || {
                        base_scheduler.schedule_at(ii, opts.budget_factor)
                    });
                    if tel.is_enabled() {
                        tel.emit(Event::ScheduleAttempt {
                            loop_name: lp.name().to_string(),
                            ii,
                            latencies: "base",
                            outcome: base_res
                                .as_ref()
                                .map_or_else(failure_outcome, |_| "scheduled"),
                        });
                    }
                    if base_res.is_ok() {
                        tel.info(format!(
                            "{}: boosted latencies unschedulable at II {ii} but base \
                             latencies fit: dropping boosts",
                            lp.name()
                        ));
                        alloc_failed_at = Some(ii);
                        break;
                    }
                    failed_ii = Some(ii);
                    continue;
                }
            };
            match time_opt(phases, Phase::Regalloc, || {
                allocate_rotating(lp, &sched, machine)
            }) {
                Ok(regs) => {
                    stats.schedule_attempts = attempts;
                    if tel.is_enabled() {
                        tel.counter_add("pipeliner.schedule_attempts", u64::from(attempts));
                        tel.counter_add("pipeliner.loops_pipelined", 1);
                    }
                    return Ok(PipelinedLoop {
                        schedule: sched,
                        regs,
                        classification: cls,
                        stats,
                    });
                }
                Err(e) => {
                    // First rung of the ladder: drop boosts at this II.
                    if tel.is_enabled() {
                        tel.emit(Event::RegallocFallback {
                            loop_name: lp.name().to_string(),
                            ii,
                            class: class_name(e.class),
                            needed: e.needed,
                            available: e.available,
                            action: "drop-boosts",
                        });
                    }
                    alloc_failed_at = Some(ii);
                    break;
                }
            }
        }
        base_phase_start = alloc_failed_at.unwrap_or(min_ii);
        stats.dropped_boosts = true;
        stats.boosted_loads = 0;
    }

    // Base-latency phase (also the whole procedure when nothing is
    // boosted).
    let scheduler = ModuloScheduler::new(lp, machine, &ddg_base);
    let mut failed_ii: Option<u32> = None;
    for ii in base_phase_start..=max_ii {
        if let Some(from_ii) = failed_ii {
            if tel.is_enabled() {
                tel.emit(Event::IiEscalation {
                    loop_name: lp.name().to_string(),
                    from_ii,
                    to_ii: ii,
                    phase: "base",
                });
            }
        }
        attempts += 1;
        let sched = match time_opt(phases, Phase::Sched, || {
            scheduler.schedule_at(ii, opts.budget_factor)
        }) {
            Ok(sched) => {
                if tel.is_enabled() {
                    tel.emit(Event::ScheduleAttempt {
                        loop_name: lp.name().to_string(),
                        ii,
                        latencies: "base",
                        outcome: "scheduled",
                    });
                }
                sched
            }
            Err(fail) => {
                if tel.is_enabled() {
                    tel.emit(Event::ScheduleAttempt {
                        loop_name: lp.name().to_string(),
                        ii,
                        latencies: "base",
                        outcome: failure_outcome(&fail),
                    });
                }
                failed_ii = Some(ii);
                continue;
            }
        };
        match time_opt(phases, Phase::Regalloc, || {
            allocate_rotating(lp, &sched, machine)
        }) {
            Ok(regs) => {
                stats.schedule_attempts = attempts;
                if tel.is_enabled() {
                    tel.counter_add("pipeliner.schedule_attempts", u64::from(attempts));
                    tel.counter_add("pipeliner.loops_pipelined", 1);
                }
                let classification = if stats.dropped_boosts {
                    LoadClassification::all_base(lp)
                } else {
                    cls
                };
                return Ok(PipelinedLoop {
                    schedule: sched,
                    regs,
                    classification,
                    stats,
                });
            }
            Err(e) => {
                if tel.is_enabled() {
                    tel.emit(Event::RegallocFallback {
                        loop_name: lp.name().to_string(),
                        ii,
                        class: class_name(e.class),
                        needed: e.needed,
                        available: e.available,
                        action: "escalate-ii",
                    });
                }
                failed_ii = Some(ii);
            }
        }
    }

    if tel.is_enabled() {
        tel.counter_add("pipeliner.schedule_attempts", u64::from(attempts));
        tel.counter_add("pipeliner.loops_rejected", 1);
    }
    Err(PipelineError { attempts, min_ii })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_ir::{DataClass, LoopBuilder};

    fn running_example() -> LoopIr {
        let mut b = LoopBuilder::new("ex");
        let s = b.affine_ref("s", DataClass::Int, 0, 4, 4);
        let d = b.affine_ref("d", DataClass::Int, 1 << 20, 4, 4);
        let c = b.live_in_gr("c");
        let v = b.load(s);
        let sum = b.add(v, c);
        b.store(d, sum);
        b.build().unwrap()
    }

    #[test]
    fn baseline_pipelines_running_example() {
        let m = MachineModel::itanium2();
        let lp = running_example();
        let p = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()).unwrap();
        assert_eq!(p.schedule.ii(), 1);
        assert_eq!(p.schedule.stage_count(), 3);
        assert_eq!(p.stats.boosted_loads, 0);
        assert!(!p.stats.dropped_boosts);
    }

    #[test]
    fn l3_hint_grows_stages_at_same_ii() {
        let m = MachineModel::itanium2();
        let lp = running_example();
        let base = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()).unwrap();
        let boosted = pipeline_loop(
            &lp,
            &m,
            &|_| Some(LatencyHint::L3),
            &PipelineOptions::default(),
        )
        .unwrap();
        assert_eq!(base.schedule.ii(), boosted.schedule.ii(), "II unchanged");
        assert!(boosted.schedule.stage_count() > base.schedule.stage_count());
        assert_eq!(boosted.stats.boosted_loads, 1);
        // The load is scheduled at the typical L3 latency.
        assert_eq!(boosted.scheduled_load_latency(&lp, &m, InstId(0)), Some(21));
        assert_eq!(base.scheduled_load_latency(&lp, &m, InstId(0)), Some(1));
    }

    #[test]
    fn chase_loop_keeps_chase_at_base() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("mcf");
        let node = b.chase_ref("node->child", 0, 64, 1 << 22, 0.1);
        let fld = b.deref_ref("node->f", DataClass::Int, node, 8, 1 << 22, 8);
        let _nv = b.load(node);
        let fv = b.load(fld);
        let _acc = b.add_reduce(fv);
        let lp = b.build().unwrap();
        let p = pipeline_loop(
            &lp,
            &m,
            &|_| Some(LatencyHint::L3),
            &PipelineOptions::default(),
        )
        .unwrap();
        assert_eq!(p.stats.critical_loads, 1);
        assert_eq!(p.stats.boosted_loads, 1);
        assert_eq!(p.scheduled_load_latency(&lp, &m, InstId(0)), Some(1));
        assert_eq!(p.scheduled_load_latency(&lp, &m, InstId(1)), Some(21));
        assert_eq!(p.schedule.ii(), 1, "II survives the boost");
    }

    #[test]
    fn register_overflow_drops_boosts() {
        // A wide FP loop where blanket L3 boosting at II=1 would need
        // ~22 regs per load value across many loads: force the ladder.
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("wide");
        let mut vals = Vec::new();
        for k in 0..4u64 {
            let x = b.affine_ref(&format!("x{k}"), DataClass::Fp, k << 24, 8, 8);
            vals.push(b.load(x));
        }
        // Consume all values so they stay live.
        let mut acc = b.fadd(vals[0], vals[1]);
        acc = b.fadd(acc, vals[2]);
        acc = b.fadd(acc, vals[3]);
        let y = b.affine_ref("y", DataClass::Fp, 9 << 24, 8, 8);
        b.store(y, acc);
        let lp = b.build().unwrap();
        // II floor: 5 mem ops -> ResMII 3. Boosted lifetimes ~22+ cycles:
        // 4 loads * ceil(22/3 + 1) ≈ 32 FP regs — fits. Tighten by using a
        // tiny FP file to force the drop.
        use ltsp_machine::{IssueResources, RegisterFiles};
        let tight = MachineModel::new(
            *m.issue(),
            *m.latencies(),
            *m.caches(),
            RegisterFiles {
                rotating_fr: 16,
                ..*m.registers()
            },
        );
        let _ = IssueResources {
            m: 2,
            i: 2,
            f: 2,
            b: 1,
        };
        let p = pipeline_loop(
            &lp,
            &tight,
            &|_| Some(LatencyHint::L3),
            &PipelineOptions::default(),
        )
        .unwrap();
        assert!(p.stats.dropped_boosts, "ladder must drop the boosts");
        assert_eq!(p.stats.boosted_loads, 0);
        assert!(p.stats.schedule_attempts >= 2);
    }

    #[test]
    fn telemetry_records_fallback_ladder() {
        use ltsp_machine::RegisterFiles;
        // Same setup as `register_overflow_drops_boosts`: blanket L3
        // boosting against a tiny FP file forces the drop-boosts rung.
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("wide");
        let mut vals = Vec::new();
        for k in 0..4u64 {
            let x = b.affine_ref(&format!("x{k}"), DataClass::Fp, k << 24, 8, 8);
            vals.push(b.load(x));
        }
        let mut acc = b.fadd(vals[0], vals[1]);
        acc = b.fadd(acc, vals[2]);
        acc = b.fadd(acc, vals[3]);
        let y = b.affine_ref("y", DataClass::Fp, 9 << 24, 8, 8);
        b.store(y, acc);
        let lp = b.build().unwrap();
        let tight = MachineModel::new(
            *m.issue(),
            *m.latencies(),
            *m.caches(),
            RegisterFiles {
                rotating_fr: 16,
                ..*m.registers()
            },
        );
        let tel = Telemetry::enabled();
        let p = pipeline_loop_traced(
            &lp,
            &tight,
            &|_| Some(LatencyHint::L3),
            &PipelineOptions::default(),
            &tel,
        )
        .unwrap();
        assert!(p.stats.dropped_boosts);

        let events = tel.events();
        let kinds: Vec<&str> = events.iter().map(|e| e.event.kind()).collect();
        assert!(
            kinds.contains(&"regalloc_fallback"),
            "must record the drop-boosts rung: {kinds:?}"
        );
        assert!(kinds.contains(&"schedule_attempt"));
        assert!(kinds.contains(&"cycle_enumeration"));
        // One criticality verdict per load.
        assert_eq!(
            kinds
                .iter()
                .filter(|k| **k == "criticality_verdict")
                .count(),
            4
        );
        let fallback = events
            .iter()
            .find_map(|e| match &e.event {
                Event::RegallocFallback {
                    class,
                    action,
                    needed,
                    available,
                    ..
                } => Some((*class, *action, *needed, *available)),
                _ => None,
            })
            .unwrap();
        assert_eq!(fallback.0, "FR");
        assert_eq!(fallback.1, "drop-boosts");
        assert!(fallback.2 > fallback.3, "needed must exceed available");
        // The trace is observational: the same compilation with telemetry
        // disabled produces an identical schedule.
        let silent = pipeline_loop(
            &lp,
            &tight,
            &|_| Some(LatencyHint::L3),
            &PipelineOptions::default(),
        )
        .unwrap();
        assert_eq!(silent.schedule.ii(), p.schedule.ii());
        assert_eq!(silent.stats, p.stats);
    }

    #[test]
    fn data_speculation_breaks_memory_recurrences() {
        use ltsp_ir::MemDepKind;
        let m = MachineModel::itanium2();
        // a[i] = c * a[i-1] + b[i], carried through memory.
        let mut b = LoopBuilder::new("iir");
        let a_prev = b.affine_ref("a[i-1]", DataClass::Fp, 0, 8, 8);
        let bb = b.affine_ref("b[i]", DataClass::Fp, 1 << 24, 8, 8);
        let a_out = b.affine_ref("a[i]", DataClass::Fp, 8, 8, 8);
        let c = b.live_in_fr("c");
        let va = b.load(a_prev);
        let vb = b.load(bb);
        let r = b.fma(c, va, vb);
        let st = b.store(a_out, r);
        b.mem_dep(st, ltsp_ir::InstId(0), MemDepKind::Flow, 1);
        let lp = b.build().unwrap();

        let plain = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()).unwrap();
        // Cycle: st -> ld (1) + ld data (6) + fma (4) = 11 per iteration.
        assert_eq!(plain.stats.rec_mii, 11);
        assert_eq!(plain.schedule.ii(), 11);
        assert_eq!(plain.stats.speculated_edges, 0);

        let spec_opts = PipelineOptions {
            data_speculation: true,
            ..PipelineOptions::default()
        };
        let spec = pipeline_loop(&lp, &m, &|_| None, &spec_opts).unwrap();
        assert_eq!(spec.stats.speculated_edges, 1);
        assert!(
            spec.schedule.ii() < plain.schedule.ii(),
            "speculation must reduce the II: {} vs {}",
            spec.schedule.ii(),
            plain.schedule.ii()
        );
        assert_eq!(
            spec.schedule.ii(),
            spec.stats.res_mii.max(spec.stats.rec_mii)
        );
    }

    #[test]
    fn speculation_leaves_resource_bound_loops_alone() {
        let m = MachineModel::itanium2();
        let lp = running_example();
        let opts = PipelineOptions {
            data_speculation: true,
            ..PipelineOptions::default()
        };
        let p = pipeline_loop(&lp, &m, &|_| None, &opts).unwrap();
        assert_eq!(p.stats.speculated_edges, 0);
    }

    #[test]
    fn stats_expose_min_ii_components() {
        let m = MachineModel::itanium2();
        let mut b = LoopBuilder::new("red");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let v = b.load(x);
        let _ = b.fadd_reduce(v);
        let lp = b.build().unwrap();
        let p = pipeline_loop(&lp, &m, &|_| None, &PipelineOptions::default()).unwrap();
        assert_eq!(p.stats.rec_mii, 4);
        assert_eq!(p.stats.res_mii, 1);
        assert_eq!(p.stats.min_ii, 4);
        assert_eq!(p.schedule.ii(), 4);
    }
}
