//! Adaptive feedback-directed latency hints: the first subsystem where
//! the simulator feeds the compiler instead of only judging it.
//!
//! The paper's HLO latency hints are static guesses about where loads
//! will be served from; its own PGO/no-PGO contrast (Figs. 7–9) shows
//! how much hint accuracy is worth. This crate closes the loop: a
//! scheduled kernel is executed on [`ltsp_memsim`], the per-reference
//! service-level observations ([`ltsp_memsim::RefObservation`]) are
//! classified into an [`ObservedOverlay`], the loop is re-pipelined with
//! the overlay merged over the static analysis, and the cycle repeats to
//! a bounded fixpoint:
//!
//! ```text
//!   round 0: compile statically ──► certify ──► simulate ──► classify
//!   round r: compile w/ overlay ──► certify ──► simulate ──► classify
//!            ... until the overlay stops changing, or the round cap
//! ```
//!
//! Every intermediate schedule is certified by the independent
//! [`ltsp_oracle`] validator against the base-latency dependence graph
//! (boosting only lengthens latencies, so a boosted schedule must still
//! satisfy every base-latency constraint). The converged schedule is the
//! best *feasible* round: its II never exceeds the static round-0 II,
//! and among those candidates the simulator's measured cycles decide.
//!
//! Everything is deterministic: fixed seeds, fixed entry/trip counts,
//! and a serial per-loop refinement loop, so round-by-round traces are
//! byte-identical at any `--jobs` level.

use ltsp_core::{CompileConfig, CompiledLoop};
use ltsp_ddg::Ddg;
use ltsp_hlo::{ObservedHint, ObservedOverlay, ObservedVerdict};
use ltsp_ir::{LatencyHint, LoopIr};
use ltsp_machine::MachineModel;
use ltsp_memsim::{Executor, ExecutorConfig, RefObservation, StreamMode};
use ltsp_oracle::validate_schedule;
use ltsp_telemetry::{Event, Telemetry};

/// Configuration of the refinement loop. The defaults are deliberately
/// small and **fixed**: the adaptive contract is that the same loop text
/// and options produce byte-identical round traces everywhere (local
/// CLI, server refine worker, any `--jobs`), so every knob that feeds
/// the simulator is pinned here rather than sampled from the host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveOptions {
    /// Maximum refinement rounds after the static round 0 (the fixpoint
    /// bound); the loop always terminates after `1 + max_rounds`
    /// compiles.
    pub max_rounds: u32,
    /// Cache-warmup loop entries simulated (and discarded) per round.
    pub warmup_entries: u32,
    /// Steady-state loop entries measured per round.
    pub measure_entries: u32,
    /// Iterations per simulated loop entry.
    pub trip: u64,
    /// Seed for the deterministic address streams.
    pub seed: u64,
    /// Whether streams replay or progress across loop entries. The
    /// default is [`StreamMode::Restart`] (reuse-heavy re-invocation):
    /// it is the mode where observation can actually improve on the
    /// static heuristic — redundant prefetches become visible and
    /// droppable — and the revoke-and-ban rule plus per-round
    /// certification make it safe when the guess is wrong.
    pub stream_mode: StreamMode,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            max_rounds: 4,
            warmup_entries: 4,
            measure_entries: 4,
            trip: 256,
            seed: 0x0ADA_9717,
            stream_mode: StreamMode::Restart,
        }
    }
}

/// One round of the refinement loop, as reported in telemetry.
#[derive(Debug, Clone)]
pub struct AdaptiveRoundReport {
    /// Round index (0 = the static compile).
    pub round: u32,
    /// The II this round's schedule achieved (or the acyclic schedule
    /// length on fallback).
    pub ii: u32,
    /// True when the round's schedule was software-pipelined.
    pub pipelined: bool,
    /// True when the independent validator certified the schedule.
    pub certified: bool,
    /// References with an observed verdict in this round's overlay.
    pub covered: usize,
    /// References whose verdict changed between this round's overlay and
    /// the one derived from this round's simulation (0 = fixpoint).
    pub hint_deltas: usize,
    /// Simulated stall cycles over the steady-state measurement window.
    pub stall_cycles: u64,
    /// Simulated total cycles over the steady-state measurement window.
    pub total_cycles: u64,
    /// The overlay this round compiled with (empty in round 0).
    pub overlay: ObservedOverlay,
}

/// The outcome of [`compile_loop_adaptive`].
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// The chosen (best feasible) round's compile.
    pub compiled: CompiledLoop,
    /// Every round, in order.
    pub rounds: Vec<AdaptiveRoundReport>,
    /// Index into `rounds` of the chosen schedule.
    pub chosen_round: u32,
    /// True when the overlay reached its fixpoint within the round cap
    /// (as opposed to being cut off by `max_rounds`).
    pub converged: bool,
}

impl AdaptiveResult {
    /// The chosen schedule's II.
    pub fn ii(&self) -> u32 {
        self.compiled.kernel.ii()
    }

    /// The static round-0 II (the heuristic the adaptive loop refines).
    pub fn static_ii(&self) -> u32 {
        self.rounds[0].ii
    }

    /// True when every intermediate schedule was validator-certified.
    pub fn all_certified(&self) -> bool {
        self.rounds.iter().all(|r| r.certified)
    }

    /// The chosen round's report.
    pub fn chosen(&self) -> &AdaptiveRoundReport {
        &self.rounds[self.chosen_round as usize]
    }
}

/// Classifies one reference's steady-state observation into a verdict:
/// references whose mean demand latency reaches the L3 service range get
/// an L3 hint, the L2 range an L2 hint, and near-L1 references are
/// `Fast` (suppressing any static hint). The floors match
/// [`ltsp_core::sample_miss_hints`], the paper's miss-sampling outlook.
///
/// The prefetch-drop side: a reference whose prefetches overwhelmingly
/// (≥ 3 in 4) found their line already resident *at the prefetch's own
/// target level* is a drop candidate — the residency does not come from
/// the prefetch (riding an in-flight fill is explicitly not redundant),
/// so removing it is body-cost savings (a lower resource-minimum II).
/// References observed only through prefetches (store streams) classify
/// as `Fast` so their redundant prefetches can be dropped too. Whether a
/// drop *persists* across rounds is decided by [`compile_loop_adaptive`],
/// which compares the post-drop service level against the pre-drop one
/// and permanently revokes any drop that made its reference slower.
fn classify(obs: &RefObservation, l2_floor: f64, l3_floor: f64) -> Option<ObservedVerdict> {
    if obs.accesses == 0 && obs.prefetches == 0 {
        return None;
    }
    let hint = match obs.avg_latency() {
        Some(avg) if avg >= l3_floor => ObservedHint::Level(LatencyHint::L3),
        Some(avg) if avg >= l2_floor => ObservedHint::Level(LatencyHint::L2),
        _ => ObservedHint::Fast,
    };
    let drop_prefetch = obs.prefetches > 0 && obs.redundant_prefetches * 4 >= obs.prefetches * 3;
    Some(ObservedVerdict {
        hint,
        drop_prefetch,
    })
}

/// Total order of observed service levels, fastest first.
fn hint_rank(h: ObservedHint) -> u32 {
    match h {
        ObservedHint::Fast => 0,
        ObservedHint::Level(LatencyHint::L2) => 1,
        ObservedHint::Level(LatencyHint::L3) => 2,
    }
}

/// Folds one round's raw measurement into the next overlay, carrying the
/// drop decisions across rounds:
///
/// - a reference dropped last round that now measures **no slower** than
///   it did with the prefetch keeps its drop (the prefetch really was
///   redundant — this is the fixpoint case);
/// - one that measures *slower* has its drop revoked and **banned**: the
///   residency did come from the prefetch, and the one-way ban is what
///   bounds the loop (each reference's drop flips at most twice);
/// - a dropped reference with no demand evidence this round (store
///   streams) keeps its previous verdict unchanged.
fn refine_overlay(
    raw: Vec<Option<ObservedVerdict>>,
    prev: &ObservedOverlay,
    banned: &mut [bool],
) -> ObservedOverlay {
    let verdicts = raw
        .into_iter()
        .enumerate()
        .map(|(i, mut v)| {
            let prev_v = prev.get(ltsp_ir::MemRefId(i as u32));
            if prev_v.is_some_and(|p| p.drop_prefetch) {
                let prev_hint = prev_v.expect("checked above").hint;
                match v.as_mut() {
                    None => v = prev_v,
                    Some(nv) => {
                        if hint_rank(nv.hint) > hint_rank(prev_hint) {
                            banned[i] = true;
                        } else {
                            nv.drop_prefetch = true;
                        }
                    }
                }
            }
            if banned[i] {
                if let Some(nv) = v.as_mut() {
                    nv.drop_prefetch = false;
                }
            }
            v
        })
        .collect();
    ObservedOverlay::new(verdicts)
}

/// One steady-state simulation measurement of a compiled loop under the
/// adaptive options' fixed window.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Per-reference observed verdicts (indexed by memref id of the
    /// pre-HLO loop).
    pub verdicts: Vec<Option<ObservedVerdict>>,
    /// Stall cycles over the measurement window.
    pub stall_cycles: u64,
    /// Total cycles over the measurement window.
    pub total_cycles: u64,
}

/// Simulates a compiled loop for the deterministic warmup + measurement
/// window of `opts` and returns the steady-state measurement — the same
/// procedure every adaptive round uses, exposed so experiment arms can
/// measure non-adaptive policies identically.
pub fn measure_compiled(
    compiled: &CompiledLoop,
    machine: &MachineModel,
    opts: &AdaptiveOptions,
) -> Measurement {
    let original_refs = compiled.lp.memrefs().len();
    simulate_round(original_refs, compiled, machine, opts)
}

/// Simulates one round's schedule and returns the steady-state
/// measurement of verdicts (for the original loop's `original_refs`
/// references), stall cycles and total cycles.
fn simulate_round(
    original_refs: usize,
    compiled: &CompiledLoop,
    machine: &MachineModel,
    opts: &AdaptiveOptions,
) -> Measurement {
    let mut ex = Executor::new(
        &compiled.lp,
        &compiled.kernel,
        machine,
        compiled.regs_total,
        ExecutorConfig {
            seed: opts.seed,
            stream_mode: opts.stream_mode,
            ..ExecutorConfig::default()
        },
    );
    // Warm the caches, then measure steady state only — like a sampling
    // profiler, whose samples are dominated by the steady state.
    for _ in 0..opts.warmup_entries.max(1) {
        ex.run_entry(opts.trip.max(1));
    }
    ex.reset_ref_stats();
    let warm = *ex.counters();
    for _ in 0..opts.measure_entries.max(1) {
        ex.run_entry(opts.trip.max(1));
    }
    let c = *ex.counters();
    let l2_floor = f64::from(machine.caches().l2.best_latency) - 1.0;
    let l3_floor = f64::from(machine.caches().l3.best_latency) + 2.0;
    let verdicts = ex
        .observations()
        .iter()
        .take(original_refs) // ignore HLO-added refs, none today
        .map(|obs| classify(obs, l2_floor, l3_floor))
        .collect();
    Measurement {
        verdicts,
        stall_cycles: c.stall_cycles() - warm.stall_cycles(),
        total_cycles: c.total - warm.total,
    }
}

/// Runs the full adaptive refinement loop on one loop.
///
/// Round 0 compiles under `cfg` unchanged (the static heuristic the
/// caller would have used); each subsequent round folds the previous
/// round's observed verdicts into `cfg.observed_overlay` and recompiles.
/// Iteration stops when the overlay stops changing (fixpoint) or after
/// `opts.max_rounds` refinements. Every round's schedule is certified by
/// the independent validator against the base-latency DDG, simulated for
/// a fixed deterministic window, and reported as an
/// [`Event::AdaptiveRound`] on `tel`.
///
/// The returned schedule is the best feasible round: II never above the
/// static round-0 II, minimal measured total cycles among those, ties
/// broken toward fewer stall cycles and then the earliest round — so
/// adaptive compilation never regresses the II and is deterministic.
pub fn compile_loop_adaptive(
    lp: &LoopIr,
    machine: &MachineModel,
    cfg: &CompileConfig,
    trip_estimate: f64,
    opts: &AdaptiveOptions,
    tel: &Telemetry,
) -> AdaptiveResult {
    let original_refs = lp.memrefs().len();
    let mut rounds: Vec<AdaptiveRoundReport> = Vec::new();
    let mut compiles: Vec<CompiledLoop> = Vec::new();
    let mut overlay = ObservedOverlay::default();
    let mut banned = vec![false; original_refs];
    let mut converged = false;

    for round in 0..=opts.max_rounds {
        let mut round_cfg = cfg.clone();
        if round > 0 {
            round_cfg.observed_overlay = Some(overlay.clone());
        }
        let compiled = ltsp_core::compile_loop_with_profile_traced(
            lp,
            machine,
            &round_cfg,
            trip_estimate,
            tel,
        );

        // Trust but verify: the independent validator re-derives every
        // constraint from the base-latency graph; a boosted schedule
        // that fails it would be a scheduler bug, not a tuning choice.
        let ddg = Ddg::build_with_load_floor(&compiled.lp, machine, 0);
        let certified = validate_schedule(&compiled.lp, &ddg, &compiled.kernel, machine).is_ok();

        let mea = simulate_round(original_refs, &compiled, machine, opts);
        let (stall_cycles, total_cycles) = (mea.stall_cycles, mea.total_cycles);
        let next = refine_overlay(mea.verdicts, &overlay, &mut banned);
        let hint_deltas = next.delta(&overlay);

        if tel.is_enabled() {
            tel.emit(Event::AdaptiveRound {
                loop_name: lp.name().to_string(),
                round,
                ii: compiled.kernel.ii(),
                pipelined: compiled.pipelined,
                covered: overlay.covered() as u64,
                hint_deltas: hint_deltas as u64,
                stall_cycles,
                total_cycles,
            });
        }

        rounds.push(AdaptiveRoundReport {
            round,
            ii: compiled.kernel.ii(),
            pipelined: compiled.pipelined,
            certified,
            covered: overlay.covered(),
            hint_deltas,
            stall_cycles,
            total_cycles,
            overlay: overlay.clone(),
        });
        compiles.push(compiled);

        if hint_deltas == 0 && round > 0 {
            converged = true;
            break;
        }
        overlay = next;
    }

    // Pick the best feasible round: never regress the static II; prefer
    // the fewest measured cycles, then stalls, then the earliest round.
    let static_ii = rounds[0].ii;
    let chosen_round = rounds
        .iter()
        .enumerate()
        .filter(|(_, r)| r.ii <= static_ii)
        .min_by_key(|(i, r)| (r.total_cycles, r.stall_cycles, *i))
        .map(|(i, _)| i)
        .unwrap_or(0);

    AdaptiveResult {
        compiled: compiles.swap_remove(chosen_round),
        rounds,
        chosen_round: chosen_round as u32,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_core::LatencyPolicy;

    #[test]
    fn saxpy_converges_and_certifies() {
        let lp = ltsp_workloads::saxpy("s");
        let m = MachineModel::itanium2();
        let cfg = CompileConfig::new(LatencyPolicy::HloHints);
        let r = compile_loop_adaptive(
            &lp,
            &m,
            &cfg,
            100.0,
            &AdaptiveOptions::default(),
            &Telemetry::disabled(),
        );
        assert!(r.converged, "rounds: {:?}", r.rounds.len());
        assert!(r.all_certified());
        assert!(r.ii() <= r.static_ii());
        assert!(r.rounds.len() >= 2, "at least one refinement round");
        assert_eq!(r.rounds.last().unwrap().hint_deltas, 0, "fixpoint");
    }

    #[test]
    fn round_zero_is_the_static_compile() {
        let lp = ltsp_workloads::saxpy("s");
        let m = MachineModel::itanium2();
        let cfg = CompileConfig::new(LatencyPolicy::HloHints);
        let static_c = ltsp_core::compile_loop_with_profile(&lp, &m, &cfg, 100.0);
        let r = compile_loop_adaptive(
            &lp,
            &m,
            &cfg,
            100.0,
            &AdaptiveOptions::default(),
            &Telemetry::disabled(),
        );
        assert_eq!(r.rounds[0].ii, static_c.kernel.ii());
        assert_eq!(r.rounds[0].covered, 0, "round 0 compiles statically");
    }

    #[test]
    fn deterministic_across_invocations() {
        let lp = ltsp_workloads::mcf_refresh("rp", 1 << 25);
        let m = MachineModel::itanium2();
        let cfg = CompileConfig::new(LatencyPolicy::HloHints);
        let opts = AdaptiveOptions::default();
        let a = compile_loop_adaptive(&lp, &m, &cfg, 2.3, &opts, &Telemetry::disabled());
        let b = compile_loop_adaptive(&lp, &m, &cfg, 2.3, &opts, &Telemetry::disabled());
        assert_eq!(a.chosen_round, b.chosen_round);
        assert_eq!(a.rounds.len(), b.rounds.len());
        for (x, y) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(x.ii, y.ii);
            assert_eq!(x.stall_cycles, y.stall_cycles);
            assert_eq!(x.total_cycles, y.total_cycles);
            assert_eq!(x.overlay, y.overlay);
        }
        assert_eq!(
            a.compiled.kernel.dump(&a.compiled.lp),
            b.compiled.kernel.dump(&b.compiled.lp)
        );
    }
}
