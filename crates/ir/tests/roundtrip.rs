//! Property test: the textual format is lossless over random loops.

use proptest::prelude::*;

use ltsp_ir::parse_loop;
use ltsp_workloads::random_loop;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse_loop(lp.to_string()) == lp` for arbitrary generated loops:
    /// every access pattern, carried operand, annotation and memory
    /// dependence survives the round trip.
    #[test]
    fn display_parse_round_trip(seed in 0u64..100_000) {
        let lp = random_loop(seed);
        let text = lp.to_string();
        let reparsed = parse_loop(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        prop_assert_eq!(lp, reparsed);
    }
}
