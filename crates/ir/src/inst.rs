//! Instructions and opcodes.

use std::fmt;

use crate::memref::{CacheLevel, DataClass, MemRefId};
use crate::reg::VReg;

/// Identifier of an instruction within one loop body (dense index, program
/// order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(pub u32);

impl InstId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Functional-unit class an instruction executes on.
///
/// Follows the Itanium execution-port taxonomy: memory (M), integer (I),
/// floating point (F) and branch (B) units, plus the A class of simple ALU
/// operations that may issue on either an M or an I port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnitClass {
    /// Memory port (loads, stores, prefetches).
    M,
    /// Integer port.
    I,
    /// Floating-point port.
    F,
    /// Branch port.
    B,
    /// Either an M or an I port (simple integer ALU ops).
    A,
}

impl fmt::Display for UnitClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            UnitClass::M => 'M',
            UnitClass::I => 'I',
            UnitClass::F => 'F',
            UnitClass::B => 'B',
            UnitClass::A => 'A',
        };
        write!(f, "{c}")
    }
}

/// Operation performed by an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Load from memory into the destination register.
    Load(DataClass),
    /// Store a register to memory.
    Store(DataClass),
    /// Software prefetch (`lfetch`) into the given cache level; no
    /// destination register, never faults.
    Prefetch(CacheLevel),
    /// Integer add (A-class).
    Add,
    /// Integer subtract (A-class).
    Sub,
    /// Bitwise and (A-class).
    And,
    /// Bitwise or (A-class).
    Or,
    /// Bitwise xor (A-class).
    Xor,
    /// Shift left (I-class).
    Shl,
    /// Shift right (I-class).
    Shr,
    /// Integer compare, writes a predicate (A-class).
    Cmp,
    /// Test bit, writes a predicate (I-class).
    Tbit,
    /// Integer multiply (on Itanium this is an F-class `xma`).
    Mul,
    /// Sign/zero extension or other I-class unary op.
    Ext,
    /// Register move (A-class).
    Mov,
    /// Move immediate into a register (A-class).
    MovImm,
    /// FP add.
    Fadd,
    /// FP subtract.
    Fsub,
    /// FP multiply.
    Fmul,
    /// Fused multiply-add.
    Fma,
    /// FP compare, writes a predicate.
    Fcmp,
    /// FP/int conversion.
    Fcvt,
    /// Predicated select `dst = qp ? a : b` — the join of an if-converted
    /// diamond (A-class).
    Sel,
    /// No-op (used for padding in tests).
    Nop,
}

impl Opcode {
    /// The functional-unit class the opcode executes on.
    pub fn unit_class(self) -> UnitClass {
        match self {
            Opcode::Load(_) | Opcode::Store(_) | Opcode::Prefetch(_) => UnitClass::M,
            Opcode::Add
            | Opcode::Sub
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Cmp
            | Opcode::Mov
            | Opcode::Sel
            | Opcode::MovImm => UnitClass::A,
            Opcode::Shl | Opcode::Shr | Opcode::Tbit | Opcode::Ext | Opcode::Nop => UnitClass::I,
            Opcode::Mul
            | Opcode::Fadd
            | Opcode::Fsub
            | Opcode::Fmul
            | Opcode::Fma
            | Opcode::Fcmp
            | Opcode::Fcvt => UnitClass::F,
        }
    }

    /// True for loads, stores and prefetches.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            Opcode::Load(_) | Opcode::Store(_) | Opcode::Prefetch(_)
        )
    }

    /// True for loads only.
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::Load(_))
    }

    /// True for stores only.
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Store(_))
    }

    /// True for prefetches only.
    pub fn is_prefetch(self) -> bool {
        matches!(self, Opcode::Prefetch(_))
    }

    /// Mnemonic used in textual dumps.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Load(DataClass::Int) => "ld",
            Opcode::Load(DataClass::Fp) => "ldf",
            Opcode::Store(DataClass::Int) => "st",
            Opcode::Store(DataClass::Fp) => "stf",
            Opcode::Prefetch(_) => "lfetch",
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Shl => "shl",
            Opcode::Shr => "shr",
            Opcode::Cmp => "cmp",
            Opcode::Tbit => "tbit",
            Opcode::Mul => "xma",
            Opcode::Ext => "ext",
            Opcode::Mov => "mov",
            Opcode::Sel => "sel",
            Opcode::MovImm => "movl",
            Opcode::Fadd => "fadd",
            Opcode::Fsub => "fsub",
            Opcode::Fmul => "fmul",
            Opcode::Fma => "fma",
            Opcode::Fcmp => "fcmp",
            Opcode::Fcvt => "fcvt",
            Opcode::Nop => "nop",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// A register read with a loop-carried distance.
///
/// `omega == 0` reads the value produced in the same source iteration;
/// `omega == k` reads the value produced `k` source iterations earlier
/// (a loop-carried flow dependence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SrcOperand {
    /// The register read.
    pub reg: VReg,
    /// Loop-carried distance in source iterations.
    pub omega: u32,
}

impl SrcOperand {
    /// A same-iteration read.
    pub fn now(reg: VReg) -> Self {
        SrcOperand { reg, omega: 0 }
    }

    /// A read of the value from `omega` iterations ago.
    pub fn carried(reg: VReg, omega: u32) -> Self {
        SrcOperand { reg, omega }
    }
}

impl From<VReg> for SrcOperand {
    fn from(reg: VReg) -> Self {
        SrcOperand::now(reg)
    }
}

impl fmt::Display for SrcOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.omega == 0 {
            write!(f, "{}", self.reg)
        } else {
            write!(f, "{}[-{}]", self.reg, self.omega)
        }
    }
}

/// One instruction of the loop body.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    id: InstId,
    op: Opcode,
    dst: Option<VReg>,
    srcs: Vec<SrcOperand>,
    mem: Option<MemRefId>,
    qp: Option<(SrcOperand, bool)>,
}

impl Inst {
    /// Creates an instruction. Use [`crate::LoopBuilder`] in normal code;
    /// this constructor is exposed for tests and deserialization.
    pub fn new(
        id: InstId,
        op: Opcode,
        dst: Option<VReg>,
        srcs: Vec<SrcOperand>,
        mem: Option<MemRefId>,
    ) -> Self {
        Inst {
            id,
            op,
            dst,
            srcs,
            mem,
            qp: None,
        }
    }

    /// Creates a predicated instruction: it executes only in iterations
    /// where the qualifying predicate (a [`crate::RegClass::Pr`] value,
    /// usually from a `cmp`) is true — or false, when `negated` — the
    /// result of if-conversion.
    pub fn new_predicated(
        id: InstId,
        op: Opcode,
        dst: Option<VReg>,
        srcs: Vec<SrcOperand>,
        mem: Option<MemRefId>,
        qp: SrcOperand,
        negated: bool,
    ) -> Self {
        Inst {
            id,
            op,
            dst,
            srcs,
            mem,
            qp: Some((qp, negated)),
        }
    }

    /// The qualifying predicate and its negation flag, if predicated.
    pub fn qp(&self) -> Option<(SrcOperand, bool)> {
        self.qp
    }

    /// All register reads: the qualifying predicate (if any) followed by
    /// the source operands. This is what dependence analysis walks.
    pub fn reads(&self) -> impl Iterator<Item = SrcOperand> + '_ {
        self.qp
            .map(|(s, _)| s)
            .into_iter()
            .chain(self.srcs.iter().copied())
    }

    /// The instruction's dense id.
    pub fn id(&self) -> InstId {
        self.id
    }

    /// The opcode.
    pub fn op(&self) -> Opcode {
        self.op
    }

    /// The destination register, if the opcode produces a value.
    pub fn dst(&self) -> Option<VReg> {
        self.dst
    }

    /// The source operands.
    pub fn srcs(&self) -> &[SrcOperand] {
        &self.srcs
    }

    /// The memory reference for loads/stores/prefetches.
    pub fn mem(&self) -> Option<MemRefId> {
        self.mem
    }

    /// Functional-unit class (delegates to the opcode).
    pub fn unit_class(&self) -> UnitClass {
        self.op.unit_class()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.id)?;
        if let Some((qp, neg)) = self.qp {
            if neg {
                write!(f, "(!{qp}) ")?;
            } else {
                write!(f, "({qp}) ")?;
            }
        }
        write!(f, "{}", self.op)?;
        if let Some(d) = self.dst {
            write!(f, " {d} =")?;
        }
        for (i, s) in self.srcs.iter().enumerate() {
            if i == 0 {
                write!(f, " {s}")?;
            } else {
                write!(f, ", {s}")?;
            }
        }
        if let Some(m) = self.mem {
            write!(f, " @{m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::RegClass;

    #[test]
    fn unit_classes() {
        assert_eq!(Opcode::Load(DataClass::Int).unit_class(), UnitClass::M);
        assert_eq!(Opcode::Add.unit_class(), UnitClass::A);
        assert_eq!(Opcode::Shl.unit_class(), UnitClass::I);
        assert_eq!(Opcode::Fma.unit_class(), UnitClass::F);
        assert_eq!(Opcode::Mul.unit_class(), UnitClass::F, "xma runs on F");
        assert_eq!(Opcode::Prefetch(CacheLevel::L2).unit_class(), UnitClass::M);
    }

    #[test]
    fn memory_predicates() {
        assert!(Opcode::Load(DataClass::Fp).is_load());
        assert!(!Opcode::Load(DataClass::Fp).is_store());
        assert!(Opcode::Store(DataClass::Int).is_memory());
        assert!(Opcode::Prefetch(CacheLevel::L3).is_prefetch());
        assert!(!Opcode::Add.is_memory());
    }

    #[test]
    fn display_round_trip_shape() {
        let g0 = VReg::new(RegClass::Gr, 0);
        let g1 = VReg::new(RegClass::Gr, 1);
        let i = Inst::new(
            InstId(2),
            Opcode::Add,
            Some(g1),
            vec![g0.into(), SrcOperand::carried(g1, 1)],
            None,
        );
        assert_eq!(i.to_string(), "i2: add g1 = g0, g1[-1]");
    }

    #[test]
    fn src_operand_from_reg_is_omega_zero() {
        let r = VReg::new(RegClass::Fr, 4);
        let s: SrcOperand = r.into();
        assert_eq!(s.omega, 0);
        assert_eq!(s.reg, r);
    }
}
