//! Ergonomic construction of [`LoopIr`] bodies.

use std::collections::HashMap;

use crate::error::IrError;
use crate::inst::{Inst, InstId, Opcode, SrcOperand};
use crate::loop_ir::{LoopIr, MemDep, MemDepKind};
use crate::memref::{AccessPattern, DataClass, MemRefId, MemoryRef};
use crate::reg::{RegClass, VReg};

/// Builder for [`LoopIr`].
///
/// Tracks register numbering, wires the address dependences implied by
/// data-dependent access patterns (gathers read the index load's result,
/// pointer chases feed themselves), and validates the finished loop.
///
/// # Example
///
/// ```
/// use ltsp_ir::{DataClass, LoopBuilder};
///
/// // for (i) sum += a[i];
/// let mut b = LoopBuilder::new("reduction");
/// let a = b.affine_ref("a", DataClass::Fp, 0x1_0000, 8, 8);
/// let v = b.load(a);
/// let sum = b.fadd_reduce(v); // sum = sum[-1] + v
/// let _ = sum;
/// let lp = b.build().unwrap();
/// assert_eq!(lp.insts().len(), 2);
/// ```
#[derive(Debug)]
pub struct LoopBuilder {
    name: String,
    insts: Vec<Inst>,
    memrefs: Vec<MemoryRef>,
    mem_deps: Vec<MemDep>,
    live_in: Vec<VReg>,
    next_reg: HashMap<RegClass, u32>,
    load_of_ref: HashMap<MemRefId, VReg>,
    if_ctx: Option<(SrcOperand, bool)>,
}

impl LoopBuilder {
    /// Starts a new loop with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        LoopBuilder {
            name: name.into(),
            insts: Vec::new(),
            memrefs: Vec::new(),
            mem_deps: Vec::new(),
            live_in: Vec::new(),
            next_reg: HashMap::new(),
            load_of_ref: HashMap::new(),
            if_ctx: None,
        }
    }

    /// Starts a predicated region: instructions emitted until
    /// [`LoopBuilder::begin_else`] / [`LoopBuilder::end_if`] carry `pred`
    /// as their qualifying predicate (the result of if-converting a
    /// branch, as the pipeliner's input requires — paper Sec. 3.3: "the
    /// loop is first if-converted to remove control flow").
    ///
    /// # Panics
    ///
    /// Panics on nested `begin_if` (single-diamond if-conversion only).
    pub fn begin_if(&mut self, pred: impl Into<SrcOperand>) {
        assert!(self.if_ctx.is_none(), "nested if-regions are not supported");
        self.if_ctx = Some((pred.into(), false));
    }

    /// Switches to the else side of the current predicated region
    /// (instructions carry the *negated* predicate).
    ///
    /// # Panics
    ///
    /// Panics outside an if-region or after a previous `begin_else`.
    pub fn begin_else(&mut self) {
        match self.if_ctx {
            Some((p, false)) => self.if_ctx = Some((p, true)),
            _ => panic!("begin_else outside a then-region"),
        }
    }

    /// Ends the current predicated region.
    ///
    /// # Panics
    ///
    /// Panics outside an if-region.
    pub fn end_if(&mut self) {
        assert!(self.if_ctx.is_some(), "end_if outside an if-region");
        self.if_ctx = None;
    }

    /// The if-conversion join: `dst = pred ? a : b`. The destination class
    /// follows `a`'s register class.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` have different register classes.
    pub fn sel(
        &mut self,
        pred: impl Into<SrcOperand>,
        a: impl Into<SrcOperand>,
        b: impl Into<SrcOperand>,
    ) -> VReg {
        let (a, b2) = (a.into(), b.into());
        assert_eq!(
            a.reg.class(),
            b2.reg.class(),
            "sel operands must share a register class"
        );
        let dst = self.fresh(a.reg.class());
        let id = InstId(self.insts.len() as u32);
        // sel reads the predicate as an ordinary operand (both values are
        // consumed regardless), so it is NOT itself predicated.
        self.insts.push(Inst::new(
            id,
            Opcode::Sel,
            Some(dst),
            vec![pred.into(), a, b2],
            None,
        ));
        dst
    }

    fn apply_qp(&self, inst: Inst) -> Inst {
        match self.if_ctx {
            None => inst,
            Some((qp, neg)) => Inst::new_predicated(
                inst.id(),
                inst.op(),
                inst.dst(),
                inst.srcs().to_vec(),
                inst.mem(),
                qp,
                neg,
            ),
        }
    }

    /// Allocates a fresh virtual register of the given class.
    pub fn fresh(&mut self, class: RegClass) -> VReg {
        let n = self.next_reg.entry(class).or_insert(0);
        let r = VReg::new(class, *n);
        *n += 1;
        r
    }

    /// Declares a loop-invariant general register (defined before the loop).
    pub fn live_in_gr(&mut self, _name: &str) -> VReg {
        let r = self.fresh(RegClass::Gr);
        self.live_in.push(r);
        r
    }

    /// Declares a loop-invariant FP register (defined before the loop).
    pub fn live_in_fr(&mut self, _name: &str) -> VReg {
        let r = self.fresh(RegClass::Fr);
        self.live_in.push(r);
        r
    }

    // ---- memory references -------------------------------------------------

    /// Adds a strided reference with a compile-time-known stride.
    pub fn affine_ref(
        &mut self,
        name: &str,
        data: DataClass,
        base: u64,
        stride: i64,
        bytes: u32,
    ) -> MemRefId {
        self.add_ref(MemoryRef::new(
            name,
            data,
            AccessPattern::Affine { base, stride },
            bytes,
        ))
    }

    /// Adds a strided reference whose stride is a runtime symbol.
    pub fn symbolic_ref(
        &mut self,
        name: &str,
        data: DataClass,
        base: u64,
        typical_stride: i64,
        bytes: u32,
    ) -> MemRefId {
        self.add_ref(MemoryRef::new(
            name,
            data,
            AccessPattern::SymbolicStride {
                base,
                typical_stride,
            },
            bytes,
        ))
    }

    /// Adds an `a[b[i]]` gather whose index values come from `index`.
    pub fn gather_ref(
        &mut self,
        name: &str,
        data: DataClass,
        index: MemRefId,
        base: u64,
        elem_bytes: u32,
        region_bytes: u64,
    ) -> MemRefId {
        self.add_ref(MemoryRef::new(
            name,
            data,
            AccessPattern::Gather {
                index,
                base,
                elem_bytes,
                region_bytes,
            },
            elem_bytes,
        ))
    }

    /// Adds a `p->field` reference whose pointer comes from `pointer`.
    pub fn deref_ref(
        &mut self,
        name: &str,
        data: DataClass,
        pointer: MemRefId,
        offset: u64,
        region_bytes: u64,
        bytes: u32,
    ) -> MemRefId {
        self.add_ref(MemoryRef::new(
            name,
            data,
            AccessPattern::Deref {
                pointer,
                offset,
                region_bytes,
            },
            bytes,
        ))
    }

    /// Adds a pointer-chase reference (`node = node->next`).
    pub fn chase_ref(
        &mut self,
        name: &str,
        base: u64,
        node_bytes: u64,
        region_bytes: u64,
        locality: f64,
    ) -> MemRefId {
        self.add_ref(MemoryRef::new(
            name,
            DataClass::Int,
            AccessPattern::PointerChase {
                base,
                node_bytes,
                region_bytes,
                locality,
            },
            8,
        ))
    }

    /// Adds a loop-invariant reference.
    pub fn invariant_ref(
        &mut self,
        name: &str,
        data: DataClass,
        addr: u64,
        bytes: u32,
    ) -> MemRefId {
        self.add_ref(MemoryRef::new(
            name,
            data,
            AccessPattern::Invariant { addr },
            bytes,
        ))
    }

    fn add_ref(&mut self, r: MemoryRef) -> MemRefId {
        let id = MemRefId(self.memrefs.len() as u32);
        self.memrefs.push(r);
        id
    }

    // ---- instructions ------------------------------------------------------

    /// Emits a load of `memref`, wiring address dependences implied by the
    /// access pattern, and returns the destination register.
    ///
    /// - `Gather`: reads the index load's destination (same iteration).
    /// - `Deref`: reads the pointer load's destination with `omega = 1`
    ///   when the pointer is a chase (the current node was produced by the
    ///   previous iteration's chase step), else `omega = 0`.
    /// - `PointerChase`: reads its own destination with `omega = 1`.
    ///
    /// # Panics
    ///
    /// Panics if a `Gather`/`Deref` pattern's source reference has not been
    /// loaded yet — load the index/pointer first.
    pub fn load(&mut self, memref: MemRefId) -> VReg {
        let data = self.memrefs[memref.index()].data_class();
        let class = match data {
            DataClass::Int => RegClass::Gr,
            DataClass::Fp => RegClass::Fr,
        };
        let dst = self.fresh(class);
        let pattern = self.memrefs[memref.index()].pattern().clone();
        let srcs = match pattern {
            AccessPattern::Gather { index, .. } => {
                let idx_reg = *self
                    .load_of_ref
                    .get(&index)
                    .expect("gather index must be loaded before the gather");
                vec![SrcOperand::now(idx_reg)]
            }
            AccessPattern::Deref { pointer, .. } => {
                let ptr_reg = *self
                    .load_of_ref
                    .get(&pointer)
                    .expect("deref pointer must be loaded before the field load");
                let ptr_is_chase = matches!(
                    self.memrefs[pointer.index()].pattern(),
                    AccessPattern::PointerChase { .. }
                );
                let omega = if ptr_is_chase { 1 } else { 0 };
                vec![SrcOperand::carried(ptr_reg, omega)]
            }
            AccessPattern::PointerChase { .. } => vec![SrcOperand::carried(dst, 1)],
            _ => vec![],
        };
        let id = InstId(self.insts.len() as u32);
        let inst = self.apply_qp(Inst::new(
            id,
            Opcode::Load(data),
            Some(dst),
            srcs,
            Some(memref),
        ));
        self.insts.push(inst);
        self.load_of_ref.insert(memref, dst);
        dst
    }

    /// Emits a store of `value` to `memref`.
    pub fn store(&mut self, memref: MemRefId, value: impl Into<SrcOperand>) -> InstId {
        let data = self.memrefs[memref.index()].data_class();
        let id = InstId(self.insts.len() as u32);
        let inst = self.apply_qp(Inst::new(
            id,
            Opcode::Store(data),
            None,
            vec![value.into()],
            Some(memref),
        ));
        self.insts.push(inst);
        id
    }

    fn alu(&mut self, op: Opcode, class: RegClass, srcs: Vec<SrcOperand>) -> VReg {
        let dst = self.fresh(class);
        let id = InstId(self.insts.len() as u32);
        let inst = self.apply_qp(Inst::new(id, op, Some(dst), srcs, None));
        self.insts.push(inst);
        dst
    }

    /// Integer add.
    pub fn add(&mut self, a: impl Into<SrcOperand>, b: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::Add, RegClass::Gr, vec![a.into(), b.into()])
    }

    /// Integer subtract.
    pub fn sub(&mut self, a: impl Into<SrcOperand>, b: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::Sub, RegClass::Gr, vec![a.into(), b.into()])
    }

    /// Bitwise and.
    pub fn and(&mut self, a: impl Into<SrcOperand>, b: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::And, RegClass::Gr, vec![a.into(), b.into()])
    }

    /// Bitwise or.
    pub fn or(&mut self, a: impl Into<SrcOperand>, b: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::Or, RegClass::Gr, vec![a.into(), b.into()])
    }

    /// Bitwise xor.
    pub fn xor(&mut self, a: impl Into<SrcOperand>, b: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::Xor, RegClass::Gr, vec![a.into(), b.into()])
    }

    /// Shift left.
    pub fn shl(&mut self, a: impl Into<SrcOperand>, b: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::Shl, RegClass::Gr, vec![a.into(), b.into()])
    }

    /// Shift right.
    pub fn shr(&mut self, a: impl Into<SrcOperand>, b: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::Shr, RegClass::Gr, vec![a.into(), b.into()])
    }

    /// Integer multiply.
    pub fn mul(&mut self, a: impl Into<SrcOperand>, b: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::Mul, RegClass::Gr, vec![a.into(), b.into()])
    }

    /// Integer compare producing a predicate.
    pub fn cmp(&mut self, a: impl Into<SrcOperand>, b: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::Cmp, RegClass::Pr, vec![a.into(), b.into()])
    }

    /// Register move.
    pub fn mov(&mut self, a: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::Mov, RegClass::Gr, vec![a.into()])
    }

    /// Integer reduction step: `acc = acc[-1] + v`.
    pub fn add_reduce(&mut self, v: impl Into<SrcOperand>) -> VReg {
        let dst = self.fresh(RegClass::Gr);
        let id = InstId(self.insts.len() as u32);
        self.insts.push(Inst::new(
            id,
            Opcode::Add,
            Some(dst),
            vec![SrcOperand::carried(dst, 1), v.into()],
            None,
        ));
        dst
    }

    /// FP add.
    pub fn fadd(&mut self, a: impl Into<SrcOperand>, b: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::Fadd, RegClass::Fr, vec![a.into(), b.into()])
    }

    /// FP subtract.
    pub fn fsub(&mut self, a: impl Into<SrcOperand>, b: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::Fsub, RegClass::Fr, vec![a.into(), b.into()])
    }

    /// FP multiply.
    pub fn fmul(&mut self, a: impl Into<SrcOperand>, b: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::Fmul, RegClass::Fr, vec![a.into(), b.into()])
    }

    /// Fused multiply-add `a * b + c`.
    pub fn fma(
        &mut self,
        a: impl Into<SrcOperand>,
        b: impl Into<SrcOperand>,
        c: impl Into<SrcOperand>,
    ) -> VReg {
        self.alu(
            Opcode::Fma,
            RegClass::Fr,
            vec![a.into(), b.into(), c.into()],
        )
    }

    /// FP reduction step: `acc = acc[-1] + v`.
    pub fn fadd_reduce(&mut self, v: impl Into<SrcOperand>) -> VReg {
        let dst = self.fresh(RegClass::Fr);
        let id = InstId(self.insts.len() as u32);
        self.insts.push(Inst::new(
            id,
            Opcode::Fadd,
            Some(dst),
            vec![SrcOperand::carried(dst, 1), v.into()],
            None,
        ));
        dst
    }

    /// FP fused multiply-add reduction: `acc = acc[-1] + a * b`.
    pub fn fma_reduce(&mut self, a: impl Into<SrcOperand>, b: impl Into<SrcOperand>) -> VReg {
        let dst = self.fresh(RegClass::Fr);
        let id = InstId(self.insts.len() as u32);
        self.insts.push(Inst::new(
            id,
            Opcode::Fma,
            Some(dst),
            vec![a.into(), b.into(), SrcOperand::carried(dst, 1)],
            None,
        ));
        dst
    }

    /// FP compare producing a predicate.
    pub fn fcmp(&mut self, a: impl Into<SrcOperand>, b: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::Fcmp, RegClass::Pr, vec![a.into(), b.into()])
    }

    /// FP/integer conversion.
    pub fn fcvt(&mut self, a: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::Fcvt, RegClass::Fr, vec![a.into()])
    }

    /// A generic unary I-class op (extension etc.).
    pub fn ext(&mut self, a: impl Into<SrcOperand>) -> VReg {
        self.alu(Opcode::Ext, RegClass::Gr, vec![a.into()])
    }

    /// Adds an explicit memory dependence edge.
    pub fn mem_dep(&mut self, from: InstId, to: InstId, kind: MemDepKind, omega: u32) {
        self.mem_deps.push(MemDep {
            from,
            to,
            kind,
            omega,
        });
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Finishes and validates the loop.
    ///
    /// # Errors
    ///
    /// Propagates any [`IrError`] from validation.
    pub fn build(self) -> Result<LoopIr, IrError> {
        LoopIr::new(
            self.name,
            self.insts,
            self.memrefs,
            self.mem_deps,
            self.live_in,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memref::AccessPattern;

    #[test]
    fn gather_wires_index_register() {
        let mut b = LoopBuilder::new("gather");
        let idx = b.affine_ref("b[i]", DataClass::Int, 0, 4, 4);
        let tgt = b.gather_ref("a[b[i]]", DataClass::Int, idx, 0x10_0000, 8, 1 << 20);
        let vi = b.load(idx);
        let _vt = b.load(tgt);
        let lp = b.build().unwrap();
        let gather_load = &lp.insts()[1];
        assert_eq!(gather_load.srcs().len(), 1);
        assert_eq!(gather_load.srcs()[0].reg, vi);
        assert_eq!(gather_load.srcs()[0].omega, 0);
    }

    #[test]
    fn chase_feeds_itself_carried() {
        let mut b = LoopBuilder::new("chase");
        let node = b.chase_ref("node->child", 0, 64, 1 << 22, 0.1);
        let v = b.load(node);
        let lp = b.build().unwrap();
        let chase = &lp.insts()[0];
        assert_eq!(chase.srcs()[0].reg, v);
        assert_eq!(chase.srcs()[0].omega, 1);
    }

    #[test]
    fn deref_off_chase_is_carried() {
        let mut b = LoopBuilder::new("mcf");
        let node = b.chase_ref("node->child", 0, 64, 1 << 22, 0.1);
        let arc = b.deref_ref("node->basic_arc", DataClass::Int, node, 8, 1 << 22, 8);
        let nv = b.load(node);
        let _av = b.load(arc);
        let lp = b.build().unwrap();
        let field = &lp.insts()[1];
        assert_eq!(field.srcs()[0].reg, nv);
        assert_eq!(field.srcs()[0].omega, 1, "current node came from last iter");
    }

    #[test]
    fn deref_off_plain_load_is_same_iteration() {
        let mut b = LoopBuilder::new("ptr");
        let parr = b.affine_ref("p[i]", DataClass::Int, 0, 8, 8);
        let fld = b.deref_ref("p[i]->f", DataClass::Int, parr, 16, 1 << 20, 8);
        let _pv = b.load(parr);
        let _fv = b.load(fld);
        let lp = b.build().unwrap();
        assert_eq!(lp.insts()[1].srcs()[0].omega, 0);
    }

    #[test]
    #[should_panic(expected = "gather index must be loaded")]
    fn gather_before_index_panics() {
        let mut b = LoopBuilder::new("bad");
        let idx = b.affine_ref("b[i]", DataClass::Int, 0, 4, 4);
        let tgt = b.gather_ref("a[b[i]]", DataClass::Int, idx, 0, 8, 1 << 20);
        let _ = b.load(tgt);
    }

    #[test]
    fn reduction_helpers_self_depend() {
        let mut b = LoopBuilder::new("dot");
        let x = b.affine_ref("x", DataClass::Fp, 0, 8, 8);
        let y = b.affine_ref("y", DataClass::Fp, 1 << 20, 8, 8);
        let vx = b.load(x);
        let vy = b.load(y);
        let acc = b.fma_reduce(vx, vy);
        let lp = b.build().unwrap();
        let fma = &lp.insts()[2];
        assert_eq!(fma.dst(), Some(acc));
        assert!(fma.srcs().iter().any(|s| s.reg == acc && s.omega == 1));
    }

    #[test]
    fn symbolic_and_invariant_refs() {
        let mut b = LoopBuilder::new("s");
        let s = b.symbolic_ref("a[i*n]", DataClass::Fp, 0, 4096, 8);
        let inv = b.invariant_ref("scale", DataClass::Fp, 0x8000, 8);
        let v1 = b.load(s);
        let v2 = b.load(inv);
        let _ = b.fmul(v1, v2);
        let lp = b.build().unwrap();
        assert!(matches!(
            lp.memref(s).pattern(),
            AccessPattern::SymbolicStride { .. }
        ));
        assert!(matches!(
            lp.memref(inv).pattern(),
            AccessPattern::Invariant { .. }
        ));
    }
}
