//! Virtual registers and register classes.

use std::fmt;

/// The architectural register class a virtual register belongs to.
///
/// The classes follow the Itanium architecture: general (integer) registers,
/// floating-point registers, and one-bit predicate registers. Each class has
/// its own rotating register file in the machine model, so the register
/// allocator accounts for them separately (the paper reports pressure growth
/// per class in Sec. 4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegClass {
    /// General (integer / pointer) registers, `r32..` rotate.
    Gr,
    /// Floating-point registers, `f32..f127` rotate.
    Fr,
    /// Predicate registers, `p16..p63` rotate.
    Pr,
}

impl RegClass {
    /// All register classes, in display order.
    pub const ALL: [RegClass; 3] = [RegClass::Gr, RegClass::Fr, RegClass::Pr];

    /// Single-letter prefix used in textual dumps (`g12`, `f3`, `p0`).
    pub fn prefix(self) -> char {
        match self {
            RegClass::Gr => 'g',
            RegClass::Fr => 'f',
            RegClass::Pr => 'p',
        }
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegClass::Gr => write!(f, "GR"),
            RegClass::Fr => write!(f, "FR"),
            RegClass::Pr => write!(f, "PR"),
        }
    }
}

/// A virtual register: an SSA-like value produced by at most one instruction
/// in the loop body (or live-in to the loop).
///
/// Virtual registers are compared and hashed by `(class, index)`; indices are
/// dense per loop and assigned by [`crate::LoopBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VReg {
    class: RegClass,
    index: u32,
}

impl VReg {
    /// Creates a virtual register handle.
    ///
    /// Normally produced by [`crate::LoopBuilder`]; exposed for tests and
    /// for tools that deserialize loops.
    pub fn new(class: RegClass, index: u32) -> Self {
        VReg { class, index }
    }

    /// The register class.
    pub fn class(self) -> RegClass {
        self.class
    }

    /// The dense per-loop index within the class.
    pub fn index(self) -> u32 {
        self.index
    }
}

impl fmt::Display for VReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class.prefix(), self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_class_prefix() {
        assert_eq!(VReg::new(RegClass::Gr, 3).to_string(), "g3");
        assert_eq!(VReg::new(RegClass::Fr, 0).to_string(), "f0");
        assert_eq!(VReg::new(RegClass::Pr, 17).to_string(), "p17");
    }

    #[test]
    fn ordering_is_class_then_index() {
        let a = VReg::new(RegClass::Gr, 5);
        let b = VReg::new(RegClass::Fr, 0);
        assert!(a < b, "GR sorts before FR regardless of index");
    }

    #[test]
    fn class_display() {
        assert_eq!(RegClass::Gr.to_string(), "GR");
        assert_eq!(RegClass::ALL.len(), 3);
    }
}
