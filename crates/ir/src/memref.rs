//! Memory-reference descriptors.
//!
//! Every load, store and prefetch instruction in a [`crate::LoopIr`] points
//! at a [`MemoryRef`] that describes *how* the reference walks memory across
//! source-loop iterations. The high-level optimizer (HLO) reads the access
//! pattern to decide prefetchability and to attach expected-latency hints;
//! the execution simulator reads it to produce the concrete address stream.

use std::fmt;

/// Whether a reference moves integer or floating-point data.
///
/// The distinction matters twice in the reproduced paper: FP loads bypass
/// the L1D cache on Itanium 2 (so their base latency is the L2 latency plus
/// one conversion cycle), and the HLO hint level differs (L2 hints for
/// integer loads, L3 hints for FP loads — one level below the highest cache
/// level each can hit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataClass {
    /// Integer or pointer data (may hit in L1D).
    Int,
    /// Floating-point data (bypasses L1D).
    Fp,
}

impl fmt::Display for DataClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataClass::Int => write!(f, "int"),
            DataClass::Fp => write!(f, "fp"),
        }
    }
}

/// A level of the data-cache hierarchy (plus main memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheLevel {
    /// First-level data cache.
    L1,
    /// Second-level cache.
    L2,
    /// Third-level cache.
    L3,
    /// Main memory (a miss in every cache).
    Memory,
}

impl CacheLevel {
    /// All levels ordered from closest to farthest.
    pub const ALL: [CacheLevel; 4] = [
        CacheLevel::L1,
        CacheLevel::L2,
        CacheLevel::L3,
        CacheLevel::Memory,
    ];
}

impl fmt::Display for CacheLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheLevel::L1 => write!(f, "L1"),
            CacheLevel::L2 => write!(f, "L2"),
            CacheLevel::L3 => write!(f, "L3"),
            CacheLevel::Memory => write!(f, "MEM"),
        }
    }
}

/// An expected-latency hint attached to a load by the HLO prefetcher.
///
/// Per Sec. 3.3 of the paper, the hint names a cache level but is translated
/// by the machine model into the *typical* (not best-case) latency of that
/// level, providing headroom for dynamic hazards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LatencyHint {
    /// Expect the load to be served from L2 (typical latency).
    L2,
    /// Expect the load to be served from L3 (typical latency).
    L3,
}

impl LatencyHint {
    /// The cache level the hint refers to.
    pub fn level(self) -> CacheLevel {
        match self {
            LatencyHint::L2 => CacheLevel::L2,
            LatencyHint::L3 => CacheLevel::L3,
        }
    }
}

impl fmt::Display for LatencyHint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.level())
    }
}

/// Identifier of a [`MemoryRef`] within one loop (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemRefId(pub u32);

impl MemRefId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MemRefId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// How a memory reference's address evolves across source iterations.
///
/// The variants cover the access classes the paper's HLO heuristics
/// distinguish (Sec. 3.2): plain strided streams, symbolic strides (2a),
/// indirect `a[b[i]]` gathers (2b), pointer chases that defeat prefetching
/// entirely (heuristic 1, the 429.mcf case of Sec. 4.4), field loads off a
/// chased pointer, and loop-invariant addresses.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPattern {
    /// `base + i * stride` with a compile-time-known stride.
    Affine {
        /// Address at iteration zero.
        base: u64,
        /// Byte stride per source iteration.
        stride: i64,
    },
    /// Strided access whose stride is a runtime symbol; `typical_stride` is
    /// what the simulator uses, but the compiler must not rely on it.
    SymbolicStride {
        /// Address at iteration zero.
        base: u64,
        /// Stride actually used when generating the address stream.
        typical_stride: i64,
    },
    /// `a[b[i]]`: the address is computed from the value loaded by the
    /// `index` reference. `region_bytes` bounds the gather footprint.
    Gather {
        /// The reference producing the index values.
        index: MemRefId,
        /// Base address of the gathered array.
        base: u64,
        /// Element size in bytes.
        elem_bytes: u32,
        /// Footprint of the gathered region.
        region_bytes: u64,
    },
    /// `p->field` where `p` is the value loaded by another reference.
    Deref {
        /// The reference producing the pointer values.
        pointer: MemRefId,
        /// Field offset added to the loaded pointer.
        offset: u64,
        /// Footprint of the pointed-to region.
        region_bytes: u64,
    },
    /// `node = node->next`: the loaded value *is* the next address. This is
    /// a loop-carried recurrence through memory; it cannot be prefetched.
    PointerChase {
        /// Start of the region the chase walks.
        base: u64,
        /// Size of one node.
        node_bytes: u64,
        /// Footprint of the walked region.
        region_bytes: u64,
        /// Fraction (0..=1) of chase steps that stay within the current
        /// cache line's neighbourhood; models allocation-order locality.
        locality: f64,
    },
    /// The same address every iteration (scalar kept in memory).
    Invariant {
        /// The invariant address.
        addr: u64,
    },
}

impl AccessPattern {
    /// Returns `true` if the address stream depends on a value loaded by
    /// another (or the same) reference, i.e. address generation is data
    /// dependent.
    pub fn is_data_dependent(&self) -> bool {
        matches!(
            self,
            AccessPattern::Gather { .. }
                | AccessPattern::Deref { .. }
                | AccessPattern::PointerChase { .. }
        )
    }

    /// The reference this pattern's addresses are computed from, if any.
    pub fn address_source(&self) -> Option<MemRefId> {
        match self {
            AccessPattern::Gather { index, .. } => Some(*index),
            AccessPattern::Deref { pointer, .. } => Some(*pointer),
            _ => None,
        }
    }

    /// Short classification label used in dumps and reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            AccessPattern::Affine { .. } => "affine",
            AccessPattern::SymbolicStride { .. } => "symbolic",
            AccessPattern::Gather { .. } => "gather",
            AccessPattern::Deref { .. } => "deref",
            AccessPattern::PointerChase { .. } => "chase",
            AccessPattern::Invariant { .. } => "invariant",
        }
    }
}

/// A software-prefetch decision for one reference, produced by the HLO
/// prefetcher (Sec. 3.2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchPlan {
    /// Number of source iterations ahead the prefetch runs (`Lat / II_est`,
    /// possibly clamped).
    pub distance: u32,
    /// Cache level the prefetch brings the line into. L2-only prefetching
    /// is chosen under OzQ pressure (heuristic 3).
    pub target: CacheLevel,
    /// True when the computed "optimal" distance was reduced (heuristics
    /// 2a/2b) — these loads get latency hints because more latency stays
    /// exposed.
    pub distance_reduced: bool,
}

/// One memory reference of a loop: access pattern plus HLO annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryRef {
    name: String,
    data: DataClass,
    pattern: AccessPattern,
    access_bytes: u32,
    hint: Option<LatencyHint>,
    prefetch: Option<PrefetchPlan>,
}

impl MemoryRef {
    /// Creates a reference with no HLO annotations.
    pub fn new(
        name: impl Into<String>,
        data: DataClass,
        pattern: AccessPattern,
        access_bytes: u32,
    ) -> Self {
        MemoryRef {
            name: name.into(),
            data,
            pattern,
            access_bytes,
            hint: None,
            prefetch: None,
        }
    }

    /// Human-readable name (e.g. the source expression).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Integer or floating-point data.
    pub fn data_class(&self) -> DataClass {
        self.data
    }

    /// The access pattern.
    pub fn pattern(&self) -> &AccessPattern {
        &self.pattern
    }

    /// Width of each access in bytes.
    pub fn access_bytes(&self) -> u32 {
        self.access_bytes
    }

    /// The expected-latency hint, if the HLO set one.
    pub fn hint(&self) -> Option<LatencyHint> {
        self.hint
    }

    /// Attaches (or clears) an expected-latency hint.
    pub fn set_hint(&mut self, hint: Option<LatencyHint>) {
        self.hint = hint;
    }

    /// The prefetch plan, if the HLO emitted one for this reference.
    pub fn prefetch(&self) -> Option<PrefetchPlan> {
        self.prefetch
    }

    /// Attaches (or clears) a prefetch plan.
    pub fn set_prefetch(&mut self, plan: Option<PrefetchPlan>) {
        self.prefetch = plan;
    }
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessPattern::Affine { base, stride } => {
                write!(f, "affine(base={base:#x}, stride={stride})")
            }
            AccessPattern::SymbolicStride {
                base,
                typical_stride,
            } => write!(f, "symbolic(base={base:#x}, stride~{typical_stride})"),
            AccessPattern::Gather {
                index,
                base,
                elem_bytes,
                region_bytes,
            } => write!(
                f,
                "gather(index={index}, base={base:#x}, elem={elem_bytes}, region={region_bytes})"
            ),
            AccessPattern::Deref {
                pointer,
                offset,
                region_bytes,
            } => write!(f, "deref(ptr={pointer}, off={offset}, region={region_bytes})"),
            AccessPattern::PointerChase {
                base,
                node_bytes,
                region_bytes,
                locality,
            } => write!(
                f,
                "chase(base={base:#x}, node={node_bytes}, region={region_bytes}, locality={locality})"
            ),
            AccessPattern::Invariant { addr } => write!(f, "invariant(addr={addr:#x})"),
        }
    }
}

impl fmt::Display for MemoryRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "\"{}\" [{} {} {}B",
            self.name, self.data, self.pattern, self.access_bytes
        )?;
        if let Some(h) = self.hint {
            write!(f, " hint={h}")?;
        }
        if let Some(p) = self.prefetch {
            write!(
                f,
                " pf(d={},{}{})",
                p.distance,
                p.target,
                if p.distance_reduced { ",reduced" } else { "" }
            )?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_dependence_classification() {
        let affine = AccessPattern::Affine { base: 0, stride: 8 };
        assert!(!affine.is_data_dependent());
        assert_eq!(affine.address_source(), None);

        let gather = AccessPattern::Gather {
            index: MemRefId(0),
            base: 0x1000,
            elem_bytes: 8,
            region_bytes: 1 << 20,
        };
        assert!(gather.is_data_dependent());
        assert_eq!(gather.address_source(), Some(MemRefId(0)));

        let chase = AccessPattern::PointerChase {
            base: 0,
            node_bytes: 64,
            region_bytes: 1 << 22,
            locality: 0.1,
        };
        assert!(chase.is_data_dependent());
        assert_eq!(chase.address_source(), None, "chase feeds itself");
    }

    #[test]
    fn display_includes_annotations() {
        let mut r = MemoryRef::new(
            "a[b[i]]",
            DataClass::Int,
            AccessPattern::Affine { base: 0, stride: 4 },
            4,
        );
        r.set_hint(Some(LatencyHint::L2));
        r.set_prefetch(Some(PrefetchPlan {
            distance: 8,
            target: CacheLevel::L2,
            distance_reduced: true,
        }));
        let s = r.to_string();
        assert!(s.contains("hint=L2"), "{s}");
        assert!(s.contains("pf(d=8,L2,reduced)"), "{s}");
        assert!(s.contains("affine(base=0x0, stride=4)"), "{s}");
    }

    #[test]
    fn hint_levels() {
        assert_eq!(LatencyHint::L2.level(), CacheLevel::L2);
        assert_eq!(LatencyHint::L3.level(), CacheLevel::L3);
        assert!(CacheLevel::L1 < CacheLevel::Memory);
    }
}
