//! Loop intermediate representation for latency-tolerant software pipelining.
//!
//! This crate defines the input language of the pipelining compiler built in
//! this workspace: innermost, counted, if-converted loops in a three-address
//! SSA-like form, together with a declarative description of every memory
//! reference made by the loop (`[MemoryRef]`).
//!
//! The representation deliberately mirrors the situation of the Intel
//! Itanium compiler back-end described in the reproduced paper (Winkel,
//! Krishnaiyer & Sampson, *Latency-Tolerant Software Pipelining in a
//! Production Compiler*, CGO 2008): by the time a loop reaches the software
//! pipeliner it has been if-converted, address arithmetic has been folded
//! into post-incrementing memory operations, and every memory reference
//! carries the access-pattern classification and latency hints computed by
//! the high-level optimizer (HLO).
//!
//! # Example
//!
//! The running example of the paper — load, add, store with post-increment —
//! is built like this:
//!
//! ```
//! use ltsp_ir::{DataClass, LoopBuilder};
//!
//! let mut b = LoopBuilder::new("running-example");
//! let src = b.affine_ref("src", DataClass::Int, 0x1000, 4, 4);
//! let dst = b.affine_ref("dst", DataClass::Int, 0x8000, 4, 4);
//! let r9 = b.live_in_gr("r9");
//! let r4 = b.load(src);
//! let r7 = b.add(r4, r9);
//! b.store(dst, r7);
//! let loop_ir = b.build().expect("well-formed loop");
//! assert_eq!(loop_ir.insts().len(), 3);
//! ```

mod builder;
mod error;
mod inst;
mod loop_ir;
mod memref;
mod parse;
mod prng;
mod reg;

pub use builder::LoopBuilder;
pub use error::IrError;
pub use inst::{Inst, InstId, Opcode, SrcOperand, UnitClass};
pub use loop_ir::{LoopIr, MemDep, MemDepKind};
pub use memref::{
    AccessPattern, CacheLevel, DataClass, LatencyHint, MemRefId, MemoryRef, PrefetchPlan,
};
pub use parse::{parse_loop, ParseError};
pub use prng::SplitMix64;
pub use reg::{RegClass, VReg};
