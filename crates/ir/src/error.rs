//! IR validation errors.

use std::error::Error;
use std::fmt;

use crate::inst::InstId;
use crate::memref::MemRefId;
use crate::reg::VReg;

/// Error produced when validating a [`crate::LoopIr`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A register is defined by more than one instruction.
    MultipleDefs {
        /// The register defined twice.
        reg: VReg,
        /// First defining instruction.
        first: InstId,
        /// Second defining instruction.
        second: InstId,
    },
    /// A same-iteration (`omega == 0`) source has no definition in the loop
    /// and is not declared live-in.
    UndefinedUse {
        /// The instruction with the dangling read.
        inst: InstId,
        /// The register read.
        reg: VReg,
    },
    /// Same-iteration dependences form a cycle, which no schedule can honor.
    ZeroOmegaCycle {
        /// An instruction on the cycle.
        inst: InstId,
    },
    /// A memory instruction is missing its [`crate::MemoryRef`], or a
    /// non-memory instruction carries one.
    MemRefMismatch {
        /// The offending instruction.
        inst: InstId,
    },
    /// An instruction or pattern points at a memory reference that does not
    /// exist in the loop.
    DanglingMemRef {
        /// The dangling id.
        memref: MemRefId,
    },
    /// A data-dependent access pattern names an address source that no load
    /// in the loop actually loads.
    PatternSourceNotLoaded {
        /// The pattern's reference.
        memref: MemRefId,
        /// The address source that is never loaded.
        source: MemRefId,
    },
    /// A qualifying predicate is not a predicate-class register.
    NonPredicateQp {
        /// The offending instruction.
        inst: InstId,
    },
    /// The loop body is empty.
    EmptyLoop,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::MultipleDefs { reg, first, second } => {
                write!(f, "register {reg} defined by both {first} and {second}")
            }
            IrError::UndefinedUse { inst, reg } => {
                write!(
                    f,
                    "instruction {inst} reads {reg} in the same iteration but no def or live-in exists"
                )
            }
            IrError::ZeroOmegaCycle { inst } => {
                write!(
                    f,
                    "same-iteration dependence cycle through instruction {inst}"
                )
            }
            IrError::MemRefMismatch { inst } => {
                write!(f, "instruction {inst} has a memory-reference mismatch")
            }
            IrError::DanglingMemRef { memref } => {
                write!(f, "memory reference {memref} does not exist")
            }
            IrError::PatternSourceNotLoaded { memref, source } => {
                write!(
                    f,
                    "access pattern of {memref} depends on {source}, which no load reads"
                )
            }
            IrError::NonPredicateQp { inst } => {
                write!(
                    f,
                    "instruction {inst} has a non-predicate qualifying predicate"
                )
            }
            IrError::EmptyLoop => write!(f, "loop body is empty"),
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::RegClass;

    #[test]
    fn messages_are_informative() {
        let e = IrError::MultipleDefs {
            reg: VReg::new(RegClass::Gr, 1),
            first: InstId(0),
            second: InstId(3),
        };
        let s = e.to_string();
        assert!(s.contains("g1"));
        assert!(s.contains("i0"));
        assert!(s.contains("i3"));
    }

    #[test]
    fn implements_error_trait() {
        fn assert_error<E: Error>() {}
        assert_error::<IrError>();
    }
}
