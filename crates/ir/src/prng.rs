//! A small deterministic PRNG used throughout the workspace.
//!
//! Core crates avoid external RNG dependencies so that every experiment is
//! bit-reproducible from a seed; `SplitMix64` is tiny, fast, and has
//! well-understood statistical quality for the simulation purposes here
//! (address-stream shuffling, trip-count sampling).

/// SplitMix64 pseudo-random number generator.
///
/// # Example
///
/// ```
/// use ltsp_ir::SplitMix64;
///
/// let mut rng = SplitMix64::new(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// // Deterministic: the same seed yields the same stream.
/// assert_eq!(SplitMix64::new(42).next_u64(), a);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // simulation purposes and the result stays deterministic.
        let x = self.next_u64();
        ((u128::from(x) * u128::from(bound)) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Default for SplitMix64 {
    fn default() -> Self {
        SplitMix64::new(0x5EED_5EED_5EED_5EED)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_stream() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            assert!(rng.next_below(17) < 17);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut rng = SplitMix64::new(99);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.next_below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket count {b} out of range");
        }
    }
}
