//! Parser for the textual loop format produced by [`LoopIr`]'s `Display`.
//!
//! The format is lossless: `parse_loop(&lp.to_string()) == lp` for every
//! valid loop (a property the test suite checks over random loops). It
//! lets tools keep loops as text and makes hand-written test inputs easy:
//!
//! ```text
//! loop example {
//!   live_in g0
//!   m0: "a[i]" [int affine(base=0x1000, stride=4) 4B]
//!   m1: "y[i]" [int affine(base=0x200000, stride=4) 4B]
//!   i0: ld g1 = @m0
//!   i1: add g2 = g1, g0
//!   i2: st g2 @m1
//! }
//! ```

use std::error::Error;
use std::fmt;

use crate::error::IrError;
use crate::inst::{Inst, InstId, Opcode, SrcOperand};
use crate::loop_ir::{LoopIr, MemDep, MemDepKind};
use crate::memref::{
    AccessPattern, CacheLevel, DataClass, LatencyHint, MemRefId, MemoryRef, PrefetchPlan,
};
use crate::reg::{RegClass, VReg};

/// Error from [`parse_loop`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// A line could not be parsed; carries the 1-based line number and a
    /// description.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The text parsed but the loop failed validation.
    Invalid(IrError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseError::Invalid(e) => write!(f, "invalid loop: {e}"),
        }
    }
}

impl Error for ParseError {}

impl From<IrError> for ParseError {
    fn from(e: IrError) -> Self {
        ParseError::Invalid(e)
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Syntax {
        line,
        message: message.into(),
    }
}

fn parse_u64(line: usize, s: &str) -> Result<u64, ParseError> {
    let s = s.trim();
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| err(line, format!("bad hex '{s}': {e}")))
    } else {
        s.parse()
            .map_err(|e| err(line, format!("bad number '{s}': {e}")))
    }
}

fn parse_i64(line: usize, s: &str) -> Result<i64, ParseError> {
    s.trim()
        .parse()
        .map_err(|e| err(line, format!("bad integer '{s}': {e}")))
}

fn parse_vreg(line: usize, s: &str) -> Result<VReg, ParseError> {
    let s = s.trim();
    let (class, rest) = match s.chars().next() {
        Some('g') => (RegClass::Gr, &s[1..]),
        Some('f') => (RegClass::Fr, &s[1..]),
        Some('p') => (RegClass::Pr, &s[1..]),
        _ => return Err(err(line, format!("bad register '{s}'"))),
    };
    let idx: u32 = rest
        .parse()
        .map_err(|e| err(line, format!("bad register index '{s}': {e}")))?;
    Ok(VReg::new(class, idx))
}

fn parse_operand(line: usize, s: &str) -> Result<SrcOperand, ParseError> {
    let s = s.trim();
    if let Some(open) = s.find("[-") {
        let close = s
            .rfind(']')
            .ok_or_else(|| err(line, format!("unclosed carried operand '{s}'")))?;
        let reg = parse_vreg(line, &s[..open])?;
        let omega: u32 = s[open + 2..close]
            .parse()
            .map_err(|e| err(line, format!("bad omega in '{s}': {e}")))?;
        Ok(SrcOperand::carried(reg, omega))
    } else {
        Ok(SrcOperand::now(parse_vreg(line, s)?))
    }
}

fn parse_memref_id(line: usize, s: &str) -> Result<MemRefId, ParseError> {
    let s = s.trim();
    let rest = s
        .strip_prefix('m')
        .ok_or_else(|| err(line, format!("bad memref id '{s}'")))?;
    let idx: u32 = rest
        .parse()
        .map_err(|e| err(line, format!("bad memref id '{s}': {e}")))?;
    Ok(MemRefId(idx))
}

/// A parsed `key(a=1, b=2)` call: the key and its `(name, value)` args.
type Call<'a> = (&'a str, Vec<(&'a str, &'a str)>);

/// Splits `key(a=1, b=2)` into `(key, {a: "1", b: "2"})`.
fn parse_call(line: usize, s: &str) -> Result<Call<'_>, ParseError> {
    let open = s
        .find('(')
        .ok_or_else(|| err(line, format!("expected '(' in '{s}'")))?;
    let close = s
        .rfind(')')
        .ok_or_else(|| err(line, format!("expected ')' in '{s}'")))?;
    let head = &s[..open];
    let mut args = Vec::new();
    for part in s[open + 1..close].split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some((k, v)) = part.split_once('=') {
            args.push((k.trim(), v.trim()));
        } else if let Some((k, v)) = part.split_once('~') {
            // `stride~N` (symbolic strides)
            args.push((k.trim(), v.trim()));
        } else {
            args.push((part, ""));
        }
    }
    Ok((head, args))
}

fn lookup<'a>(line: usize, args: &[(&'a str, &'a str)], key: &str) -> Result<&'a str, ParseError> {
    args.iter()
        .find(|(k, _)| *k == key)
        .map(|(_, v)| *v)
        .ok_or_else(|| err(line, format!("missing '{key}'")))
}

fn parse_pattern(line: usize, s: &str) -> Result<AccessPattern, ParseError> {
    let (kind, args) = parse_call(line, s)?;
    match kind {
        "affine" => Ok(AccessPattern::Affine {
            base: parse_u64(line, lookup(line, &args, "base")?)?,
            stride: parse_i64(line, lookup(line, &args, "stride")?)?,
        }),
        "symbolic" => Ok(AccessPattern::SymbolicStride {
            base: parse_u64(line, lookup(line, &args, "base")?)?,
            typical_stride: parse_i64(line, lookup(line, &args, "stride")?)?,
        }),
        "gather" => Ok(AccessPattern::Gather {
            index: parse_memref_id(line, lookup(line, &args, "index")?)?,
            base: parse_u64(line, lookup(line, &args, "base")?)?,
            elem_bytes: parse_u64(line, lookup(line, &args, "elem")?)? as u32,
            region_bytes: parse_u64(line, lookup(line, &args, "region")?)?,
        }),
        "deref" => Ok(AccessPattern::Deref {
            pointer: parse_memref_id(line, lookup(line, &args, "ptr")?)?,
            offset: parse_u64(line, lookup(line, &args, "off")?)?,
            region_bytes: parse_u64(line, lookup(line, &args, "region")?)?,
        }),
        "chase" => Ok(AccessPattern::PointerChase {
            base: parse_u64(line, lookup(line, &args, "base")?)?,
            node_bytes: parse_u64(line, lookup(line, &args, "node")?)?,
            region_bytes: parse_u64(line, lookup(line, &args, "region")?)?,
            locality: lookup(line, &args, "locality")?
                .parse()
                .map_err(|e| err(line, format!("bad locality: {e}")))?,
        }),
        "invariant" => Ok(AccessPattern::Invariant {
            addr: parse_u64(line, lookup(line, &args, "addr")?)?,
        }),
        other => Err(err(line, format!("unknown access pattern '{other}'"))),
    }
}

fn parse_memref_line(line: usize, rest: &str) -> Result<MemoryRef, ParseError> {
    // "name" [int affine(...) 4B hint=L2 pf(d=8,L2,reduced)]
    let rest = rest.trim();
    let name_start = rest
        .find('"')
        .ok_or_else(|| err(line, "expected quoted reference name"))?;
    let name_end = rest[name_start + 1..]
        .find('"')
        .map(|i| i + name_start + 1)
        .ok_or_else(|| err(line, "unterminated reference name"))?;
    let name = &rest[name_start + 1..name_end];
    let body = rest[name_end + 1..].trim();
    let body = body
        .strip_prefix('[')
        .and_then(|b| b.strip_suffix(']'))
        .ok_or_else(|| err(line, "expected [ ... ] reference body"))?;

    let mut tokens = split_top_level(body);
    if tokens.len() < 3 {
        return Err(err(line, "reference body needs data class, pattern, width"));
    }
    let data = match tokens.remove(0).as_str() {
        "int" => DataClass::Int,
        "fp" => DataClass::Fp,
        other => return Err(err(line, format!("unknown data class '{other}'"))),
    };
    let pattern = parse_pattern(line, &tokens.remove(0))?;
    let width_tok = tokens.remove(0);
    let width: u32 = width_tok
        .strip_suffix('B')
        .ok_or_else(|| err(line, format!("expected width like '4B', got '{width_tok}'")))?
        .parse()
        .map_err(|e| err(line, format!("bad width '{width_tok}': {e}")))?;

    let mut mr = MemoryRef::new(name, data, pattern, width);
    for tok in tokens {
        if let Some(h) = tok.strip_prefix("hint=") {
            let hint = match h {
                "L2" => LatencyHint::L2,
                "L3" => LatencyHint::L3,
                other => return Err(err(line, format!("unknown hint '{other}'"))),
            };
            mr.set_hint(Some(hint));
        } else if tok.starts_with("pf(") {
            let (_, args) = parse_call(line, &tok)?;
            let distance = parse_u64(line, lookup(line, &args, "d")?)? as u32;
            let mut target = None;
            let mut reduced = false;
            for (k, v) in &args {
                match *k {
                    "d" => {}
                    "L1" => target = Some(CacheLevel::L1),
                    "L2" => target = Some(CacheLevel::L2),
                    "L3" => target = Some(CacheLevel::L3),
                    "MEM" => target = Some(CacheLevel::Memory),
                    "reduced" => reduced = true,
                    other => return Err(err(line, format!("unknown pf field '{other}={v}'"))),
                }
            }
            mr.set_prefetch(Some(PrefetchPlan {
                distance,
                target: target.ok_or_else(|| err(line, "pf missing target level"))?,
                distance_reduced: reduced,
            }));
        } else {
            return Err(err(line, format!("unknown reference attribute '{tok}'")));
        }
    }
    Ok(mr)
}

/// Splits on whitespace but keeps `(...)` groups intact.
fn split_top_level(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for ch in s.chars() {
        match ch {
            '(' => {
                depth += 1;
                cur.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                cur.push(ch);
            }
            c if c.is_whitespace() && depth == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn opcode_from_mnemonic(
    line: usize,
    m: &str,
    target: Option<CacheLevel>,
) -> Result<Opcode, ParseError> {
    Ok(match m {
        "ld" => Opcode::Load(DataClass::Int),
        "ldf" => Opcode::Load(DataClass::Fp),
        "st" => Opcode::Store(DataClass::Int),
        "stf" => Opcode::Store(DataClass::Fp),
        "lfetch" => Opcode::Prefetch(target.unwrap_or(CacheLevel::L1)),
        "add" => Opcode::Add,
        "sub" => Opcode::Sub,
        "and" => Opcode::And,
        "or" => Opcode::Or,
        "xor" => Opcode::Xor,
        "shl" => Opcode::Shl,
        "shr" => Opcode::Shr,
        "cmp" => Opcode::Cmp,
        "tbit" => Opcode::Tbit,
        "xma" => Opcode::Mul,
        "ext" => Opcode::Ext,
        "mov" => Opcode::Mov,
        "sel" => Opcode::Sel,
        "movl" => Opcode::MovImm,
        "fadd" => Opcode::Fadd,
        "fsub" => Opcode::Fsub,
        "fmul" => Opcode::Fmul,
        "fma" => Opcode::Fma,
        "fcmp" => Opcode::Fcmp,
        "fcvt" => Opcode::Fcvt,
        "nop" => Opcode::Nop,
        other => return Err(err(line, format!("unknown mnemonic '{other}'"))),
    })
}

fn parse_inst_line(line: usize, id: InstId, rest: &str) -> Result<Inst, ParseError> {
    // [(qp)] <mnemonic> [dst =] [src, src...] [@mK]
    let mut rest = rest.trim();
    let mut qp: Option<(SrcOperand, bool)> = None;
    if rest.starts_with('(') {
        let close = rest
            .find(')')
            .ok_or_else(|| err(line, "unterminated qualifying predicate"))?;
        let inner = &rest[1..close];
        let (neg, body) = match inner.strip_prefix('!') {
            Some(b) => (true, b),
            None => (false, inner),
        };
        qp = Some((parse_operand(line, body)?, neg));
        rest = rest[close + 1..].trim();
    }
    let (mem, rest) = match rest.rfind('@') {
        Some(at) => {
            let m = parse_memref_id(line, rest[at + 1..].trim())?;
            (Some(m), rest[..at].trim())
        }
        None => (None, rest),
    };
    let mut parts = rest.splitn(2, char::is_whitespace);
    let mnemonic = parts.next().ok_or_else(|| err(line, "empty instruction"))?;
    let operand_text = parts.next().unwrap_or("").trim();

    let op = opcode_from_mnemonic(line, mnemonic, None)?;
    let (dst, srcs_text) = match operand_text.split_once('=') {
        Some((d, s)) => (Some(parse_vreg(line, d)?), s.trim()),
        None => (None, operand_text),
    };
    let srcs = if srcs_text.is_empty() {
        Vec::new()
    } else {
        srcs_text
            .split(',')
            .map(|s| parse_operand(line, s))
            .collect::<Result<Vec<_>, _>>()?
    };
    if op.is_memory() && mem.is_none() {
        return Err(err(line, "memory instruction needs an @mK reference"));
    }
    Ok(match qp {
        None => Inst::new(id, op, dst, srcs, mem),
        Some((q, neg)) => Inst::new_predicated(id, op, dst, srcs, mem, q, neg),
    })
}

/// Parses a loop from the textual format written by [`LoopIr`]'s
/// `Display` implementation.
///
/// # Errors
///
/// [`ParseError::Syntax`] for malformed text (with the line number) and
/// [`ParseError::Invalid`] when the parsed loop fails [`LoopIr`]
/// validation.
///
/// # Example
///
/// ```
/// use ltsp_ir::{parse_loop, DataClass, LoopBuilder};
///
/// let mut b = LoopBuilder::new("roundtrip");
/// let a = b.affine_ref("a[i]", DataClass::Fp, 0x1000, 8, 8);
/// let v = b.load(a);
/// let _ = b.fadd_reduce(v);
/// let lp = b.build()?;
/// let reparsed = parse_loop(&lp.to_string()).unwrap();
/// assert_eq!(lp, reparsed);
/// # Ok::<(), ltsp_ir::IrError>(())
/// ```
pub fn parse_loop(text: &str) -> Result<LoopIr, ParseError> {
    let mut name = None;
    let mut live_in = Vec::new();
    let mut memrefs: Vec<MemoryRef> = Vec::new();
    let mut insts: Vec<Inst> = Vec::new();
    let mut mem_deps: Vec<MemDep> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("loop ") {
            let n = rest
                .strip_suffix('{')
                .ok_or_else(|| err(lineno, "expected '{' after loop name"))?;
            name = Some(n.trim().to_string());
        } else if line == "}" {
            break;
        } else if let Some(rest) = line.strip_prefix("live_in ") {
            for part in rest.split(',') {
                live_in.push(parse_vreg(lineno, part)?);
            }
        } else if let Some(rest) = line.strip_prefix("dep ") {
            // dep i0 -> i2 mem-flow omega=1
            let tokens: Vec<&str> = rest.split_whitespace().collect();
            if tokens.len() != 5 || tokens[1] != "->" {
                return Err(err(lineno, "expected 'dep iA -> iB kind omega=N'"));
            }
            let parse_inst_id = |s: &str| -> Result<InstId, ParseError> {
                s.strip_prefix('i')
                    .and_then(|n| n.parse().ok())
                    .map(InstId)
                    .ok_or_else(|| err(lineno, format!("bad instruction id '{s}'")))
            };
            let kind = match tokens[3] {
                "mem-flow" => MemDepKind::Flow,
                "mem-anti" => MemDepKind::Anti,
                "mem-output" => MemDepKind::Output,
                other => return Err(err(lineno, format!("unknown dep kind '{other}'"))),
            };
            let omega = tokens[4]
                .strip_prefix("omega=")
                .and_then(|n| n.parse().ok())
                .ok_or_else(|| err(lineno, "bad omega"))?;
            mem_deps.push(MemDep {
                from: parse_inst_id(tokens[0])?,
                to: parse_inst_id(tokens[2])?,
                kind,
                omega,
            });
        } else if let Some((head, rest)) = line.split_once(':') {
            let head = head.trim();
            if let Some(n) = head.strip_prefix('m') {
                let expected: u32 = n
                    .parse()
                    .map_err(|e| err(lineno, format!("bad memref id '{head}': {e}")))?;
                if expected as usize != memrefs.len() {
                    return Err(err(lineno, "memory references must appear in order"));
                }
                memrefs.push(parse_memref_line(lineno, rest)?);
            } else if let Some(n) = head.strip_prefix('i') {
                let expected: u32 = n
                    .parse()
                    .map_err(|e| err(lineno, format!("bad instruction id '{head}': {e}")))?;
                if expected as usize != insts.len() {
                    return Err(err(lineno, "instructions must appear in order"));
                }
                insts.push(parse_inst_line(lineno, InstId(expected), rest)?);
            } else {
                return Err(err(lineno, format!("unrecognized line '{line}'")));
            }
        } else {
            return Err(err(lineno, format!("unrecognized line '{line}'")));
        }
    }

    let name = name.ok_or_else(|| err(1, "missing 'loop NAME {' header"))?;

    // Prefetch instructions print as `lfetch`, losing their target level;
    // recover it from the reference's prefetch plan.
    for inst in &mut insts {
        if let Opcode::Prefetch(_) = inst.op() {
            if let Some(m) = inst.mem() {
                if let Some(plan) = memrefs.get(m.index()).and_then(|r| r.prefetch()) {
                    *inst = Inst::new(
                        inst.id(),
                        Opcode::Prefetch(plan.target),
                        inst.dst(),
                        inst.srcs().to_vec(),
                        inst.mem(),
                    );
                }
            }
        }
    }

    Ok(LoopIr::new(name, insts, memrefs, mem_deps, live_in)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;

    #[test]
    fn parses_hand_written_loop() {
        let text = r#"
loop example {
  live_in g0
  m0: "a[i]" [int affine(base=0x1000, stride=4) 4B]
  m1: "y[i]" [int affine(base=0x200000, stride=4) 4B]
  i0: ld g1 = @m0
  i1: add g2 = g1, g0
  i2: st g2 @m1
}
"#;
        let lp = parse_loop(text).unwrap();
        assert_eq!(lp.name(), "example");
        assert_eq!(lp.insts().len(), 3);
        assert_eq!(lp.memrefs().len(), 2);
        assert_eq!(lp.live_in().len(), 1);
    }

    #[test]
    fn round_trips_every_pattern() {
        let mut b = LoopBuilder::new("all-patterns");
        let a = b.affine_ref("a[i]", DataClass::Fp, 0x1000, 8, 8);
        let sym = b.symbolic_ref("s[i*n]", DataClass::Fp, 0x2000, 4096, 8);
        let idx = b.affine_ref("b[i]", DataClass::Int, 0x3000, 4, 4);
        let g = b.gather_ref("a[b[i]]", DataClass::Int, idx, 0x10_0000, 4, 1 << 20);
        let node = b.chase_ref("node", 0x20_0000, 64, 1 << 22, 0.125);
        let fld = b.deref_ref("node->f", DataClass::Int, node, 128, 1 << 22, 8);
        let inv = b.invariant_ref("scale", DataClass::Fp, 0x8000, 8);
        let va = b.load(a);
        let vs = b.load(sym);
        let vi = b.load(idx);
        let vg = b.load(g);
        let vn = b.load(node);
        let vf = b.load(fld);
        let vv = b.load(inv);
        let t = b.fadd(va, vs);
        let u = b.fma_reduce(t, vv);
        let w = b.add(vi, vg);
        let x = b.add(w, vf);
        let _ = (u, vn, x);
        let out = b.affine_ref("y[i]", DataClass::Int, 0x9000_0000, 4, 4);
        b.store(out, x);
        let lp = b.build().unwrap();

        let text = lp.to_string();
        let reparsed = parse_loop(&text).unwrap();
        assert_eq!(lp, reparsed, "round trip failed for:\n{text}");
    }

    #[test]
    fn round_trips_annotations() {
        use crate::memref::{CacheLevel, PrefetchPlan};
        let mut b = LoopBuilder::new("annot");
        let a = b.affine_ref("a[i]", DataClass::Int, 0, 4, 4);
        let v = b.load(a);
        let _ = b.add(v, v);
        let mut lp = b.build().unwrap();
        lp.memref_mut(a).set_hint(Some(LatencyHint::L3));
        lp.memref_mut(a).set_prefetch(Some(PrefetchPlan {
            distance: 12,
            target: CacheLevel::L2,
            distance_reduced: true,
        }));
        let reparsed = parse_loop(&lp.to_string()).unwrap();
        assert_eq!(lp, reparsed);
    }

    #[test]
    fn round_trips_mem_deps_and_carried_operands() {
        use crate::loop_ir::MemDepKind;
        let mut b = LoopBuilder::new("deps");
        let a = b.affine_ref("a[i]", DataClass::Int, 0, 4, 4);
        let v = b.load(a);
        let acc = b.add_reduce(v);
        let out = b.affine_ref("a2[i]", DataClass::Int, 1 << 20, 4, 4);
        let st = b.store(out, acc);
        b.mem_dep(st, InstId(0), MemDepKind::Flow, 1);
        let lp = b.build().unwrap();
        let reparsed = parse_loop(&lp.to_string()).unwrap();
        assert_eq!(lp, reparsed);
    }

    #[test]
    fn reports_line_numbers() {
        let text = "loop x {\n  m0: garbage\n}";
        let e = parse_loop(text).unwrap_err();
        match e {
            ParseError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other}"),
        }
    }

    #[test]
    fn rejects_invalid_loops() {
        let text = "loop bad {\n  i0: add g0 = g9\n}";
        let e = parse_loop(text).unwrap_err();
        assert!(matches!(e, ParseError::Invalid(_)), "{e}");
    }

    #[test]
    fn rejects_out_of_order_ids() {
        let text = r#"
loop x {
  m0: "a" [int affine(base=0x0, stride=4) 4B]
  i1: ld g0 = @m0
}
"#;
        let e = parse_loop(text).unwrap_err();
        assert!(matches!(e, ParseError::Syntax { .. }));
    }
}
