//! The loop container and its validation.

use std::collections::HashMap;
use std::fmt;

use crate::error::IrError;
use crate::inst::{Inst, InstId};
use crate::memref::{MemRefId, MemoryRef};
use crate::reg::{RegClass, VReg};

/// Kind of an explicit memory dependence between two memory instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemDepKind {
    /// Store → load (read after write).
    Flow,
    /// Load → store (write after read).
    Anti,
    /// Store → store (write after write).
    Output,
}

impl fmt::Display for MemDepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemDepKind::Flow => write!(f, "mem-flow"),
            MemDepKind::Anti => write!(f, "mem-anti"),
            MemDepKind::Output => write!(f, "mem-output"),
        }
    }
}

/// An explicit memory dependence edge added by the front end (the result of
/// its alias analysis). Register dependences are implicit in the operand
/// structure; memory dependences must be declared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemDep {
    /// Source instruction.
    pub from: InstId,
    /// Destination instruction.
    pub to: InstId,
    /// Dependence kind.
    pub kind: MemDepKind,
    /// Loop-carried distance (0 = same iteration).
    pub omega: u32,
}

/// An innermost, counted, if-converted loop: the unit of work for the
/// software pipeliner.
///
/// Built via [`crate::LoopBuilder`]; validated on construction so that all
/// downstream passes can assume well-formedness.
#[derive(Debug, Clone, PartialEq)]
pub struct LoopIr {
    name: String,
    insts: Vec<Inst>,
    memrefs: Vec<MemoryRef>,
    mem_deps: Vec<MemDep>,
    live_in: Vec<VReg>,
}

impl LoopIr {
    /// Assembles and validates a loop. Prefer [`crate::LoopBuilder`].
    ///
    /// # Errors
    ///
    /// Returns the first [`IrError`] found: duplicate definitions, dangling
    /// same-iteration uses, zero-omega dependence cycles, memory-reference
    /// mismatches, or an empty body.
    pub fn new(
        name: impl Into<String>,
        insts: Vec<Inst>,
        memrefs: Vec<MemoryRef>,
        mem_deps: Vec<MemDep>,
        live_in: Vec<VReg>,
    ) -> Result<Self, IrError> {
        let lp = LoopIr {
            name: name.into(),
            insts,
            memrefs,
            mem_deps,
            live_in,
        };
        lp.validate()?;
        Ok(lp)
    }

    /// The loop's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The loop body in program order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Looks up an instruction by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// The memory references of the loop.
    pub fn memrefs(&self) -> &[MemoryRef] {
        &self.memrefs
    }

    /// Looks up a memory reference by id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn memref(&self, id: MemRefId) -> &MemoryRef {
        &self.memrefs[id.index()]
    }

    /// Mutable access to a memory reference (the HLO sets hints/prefetch
    /// plans through this).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn memref_mut(&mut self, id: MemRefId) -> &mut MemoryRef {
        &mut self.memrefs[id.index()]
    }

    /// Explicit memory dependence edges.
    pub fn mem_deps(&self) -> &[MemDep] {
        &self.mem_deps
    }

    /// Registers defined outside the loop and read inside it.
    pub fn live_in(&self) -> &[VReg] {
        &self.live_in
    }

    /// Appends an instruction (used by the HLO when inserting prefetches).
    /// The caller is responsible for re-validating if it introduces new
    /// registers; prefetches never do.
    pub fn push_inst(&mut self, inst: Inst) -> InstId {
        debug_assert_eq!(inst.id().index(), self.insts.len());
        let id = inst.id();
        self.insts.push(inst);
        id
    }

    /// Appends a memory reference, returning its id (used by the HLO for
    /// prefetch streams).
    pub fn push_memref(&mut self, memref: MemoryRef) -> MemRefId {
        let id = MemRefId(self.memrefs.len() as u32);
        self.memrefs.push(memref);
        id
    }

    /// The instruction defining `reg`, if any.
    pub fn def_of(&self, reg: VReg) -> Option<InstId> {
        self.insts
            .iter()
            .find(|i| i.dst() == Some(reg))
            .map(|i| i.id())
    }

    /// Iterates over loads together with their memory references.
    pub fn loads(&self) -> impl Iterator<Item = (&Inst, MemRefId)> + '_ {
        self.insts.iter().filter_map(|i| {
            if i.op().is_load() {
                i.mem().map(|m| (i, m))
            } else {
                None
            }
        })
    }

    /// Counts instructions per functional-unit class `(m, i, f, b, a)`.
    pub fn unit_counts(&self) -> UnitCounts {
        let mut c = UnitCounts::default();
        for inst in &self.insts {
            match inst.unit_class() {
                crate::inst::UnitClass::M => c.m += 1,
                crate::inst::UnitClass::I => c.i += 1,
                crate::inst::UnitClass::F => c.f += 1,
                crate::inst::UnitClass::B => c.b += 1,
                crate::inst::UnitClass::A => c.a += 1,
            }
        }
        c
    }

    /// Number of virtual registers used (defined or live-in) per class.
    pub fn vreg_count(&self, class: RegClass) -> usize {
        let mut seen = std::collections::HashSet::new();
        for inst in &self.insts {
            if let Some(d) = inst.dst() {
                if d.class() == class {
                    seen.insert(d);
                }
            }
            for s in inst.reads() {
                if s.reg.class() == class {
                    seen.insert(s.reg);
                }
            }
        }
        for &r in &self.live_in {
            if r.class() == class {
                seen.insert(r);
            }
        }
        seen.len()
    }

    fn validate(&self) -> Result<(), IrError> {
        if self.insts.is_empty() {
            return Err(IrError::EmptyLoop);
        }
        // Unique definitions.
        let mut defs: HashMap<VReg, InstId> = HashMap::new();
        for inst in &self.insts {
            if let Some(d) = inst.dst() {
                if let Some(&first) = defs.get(&d) {
                    return Err(IrError::MultipleDefs {
                        reg: d,
                        first,
                        second: inst.id(),
                    });
                }
                defs.insert(d, inst.id());
            }
        }
        // Uses resolve: every omega-0 read needs a def or live-in; carried
        // reads need a def (a live-in cannot be produced "last iteration").
        let live_in: std::collections::HashSet<VReg> = self.live_in.iter().copied().collect();
        for inst in &self.insts {
            for s in inst.reads() {
                let has_def = defs.contains_key(&s.reg);
                let ok = if s.omega == 0 {
                    has_def || live_in.contains(&s.reg)
                } else {
                    has_def
                };
                if !ok {
                    return Err(IrError::UndefinedUse {
                        inst: inst.id(),
                        reg: s.reg,
                    });
                }
            }
            if let Some((qp, _)) = inst.qp() {
                if qp.reg.class() != crate::reg::RegClass::Pr {
                    return Err(IrError::NonPredicateQp { inst: inst.id() });
                }
            }
        }
        // Memory instructions carry a valid memref; others carry none.
        for inst in &self.insts {
            if inst.op().is_memory() != inst.mem().is_some() {
                return Err(IrError::MemRefMismatch { inst: inst.id() });
            }
            if let Some(m) = inst.mem() {
                if m.index() >= self.memrefs.len() {
                    return Err(IrError::DanglingMemRef { memref: m });
                }
            }
        }
        // Pattern address sources exist and are actually loaded.
        let loaded: std::collections::HashSet<MemRefId> = self.loads().map(|(_, m)| m).collect();
        for (idx, mr) in self.memrefs.iter().enumerate() {
            if let Some(src) = mr.pattern().address_source() {
                if src.index() >= self.memrefs.len() {
                    return Err(IrError::DanglingMemRef { memref: src });
                }
                if !loaded.contains(&src) {
                    return Err(IrError::PatternSourceNotLoaded {
                        memref: MemRefId(idx as u32),
                        source: src,
                    });
                }
            }
        }
        // Mem-dep endpoints exist.
        for d in &self.mem_deps {
            if d.from.index() >= self.insts.len() {
                return Err(IrError::MemRefMismatch { inst: d.from });
            }
            if d.to.index() >= self.insts.len() {
                return Err(IrError::MemRefMismatch { inst: d.to });
            }
        }
        // No zero-omega cycles (register flow only; explicit mem deps with
        // omega 0 participate too).
        self.check_zero_omega_acyclic(&defs)?;
        Ok(())
    }

    fn check_zero_omega_acyclic(&self, defs: &HashMap<VReg, InstId>) -> Result<(), IrError> {
        let n = self.insts.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for inst in &self.insts {
            for s in inst.reads() {
                if s.omega == 0 {
                    if let Some(&def) = defs.get(&s.reg) {
                        adj[def.index()].push(inst.id().index());
                    }
                }
            }
        }
        for d in &self.mem_deps {
            if d.omega == 0 {
                adj[d.from.index()].push(d.to.index());
            }
        }
        // Iterative three-color DFS cycle check.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; n];
        for start in 0..n {
            if color[start] != Color::White {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Gray;
            while let Some(&mut (node, ref mut edge)) = stack.last_mut() {
                if *edge < adj[node].len() {
                    let next = adj[node][*edge];
                    *edge += 1;
                    match color[next] {
                        Color::White => {
                            color[next] = Color::Gray;
                            stack.push((next, 0));
                        }
                        Color::Gray => {
                            return Err(IrError::ZeroOmegaCycle {
                                inst: InstId(next as u32),
                            });
                        }
                        Color::Black => {}
                    }
                } else {
                    color[node] = Color::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

/// Per-unit-class instruction counts for a loop body.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitCounts {
    /// Memory-class instructions.
    pub m: u32,
    /// Integer-class instructions.
    pub i: u32,
    /// FP-class instructions.
    pub f: u32,
    /// Branch-class instructions.
    pub b: u32,
    /// A-class (M-or-I) instructions.
    pub a: u32,
}

impl fmt::Display for LoopIr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "loop {} {{", self.name)?;
        if !self.live_in.is_empty() {
            write!(f, "  live_in")?;
            for (i, r) in self.live_in.iter().enumerate() {
                write!(f, "{} {r}", if i == 0 { "" } else { "," })?;
            }
            writeln!(f)?;
        }
        for (idx, mr) in self.memrefs.iter().enumerate() {
            writeln!(f, "  {}: {mr}", MemRefId(idx as u32))?;
        }
        for inst in &self.insts {
            writeln!(f, "  {inst}")?;
        }
        for d in &self.mem_deps {
            writeln!(
                f,
                "  dep {} -> {} {} omega={}",
                d.from, d.to, d.kind, d.omega
            )?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::LoopBuilder;
    use crate::inst::{Opcode, SrcOperand};
    use crate::memref::{AccessPattern, DataClass};
    use crate::reg::RegClass;

    fn simple_loop() -> LoopIr {
        let mut b = LoopBuilder::new("t");
        let m = b.affine_ref("a", DataClass::Int, 0, 4, 4);
        let v = b.load(m);
        let c = b.live_in_gr("c");
        let s = b.add(v, c);
        let d = b.affine_ref("d", DataClass::Int, 0x9000, 4, 4);
        b.store(d, s);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_validates() {
        let lp = simple_loop();
        assert_eq!(lp.insts().len(), 3);
        assert_eq!(lp.memrefs().len(), 2);
        assert_eq!(lp.unit_counts().m, 2);
        assert_eq!(lp.unit_counts().a, 1);
    }

    #[test]
    fn rejects_empty_loop() {
        let b = LoopBuilder::new("empty");
        assert_eq!(b.build().unwrap_err(), IrError::EmptyLoop);
    }

    #[test]
    fn rejects_double_def() {
        let g = VReg::new(RegClass::Gr, 0);
        let i0 = Inst::new(InstId(0), Opcode::MovImm, Some(g), vec![], None);
        let i1 = Inst::new(InstId(1), Opcode::MovImm, Some(g), vec![], None);
        let err = LoopIr::new("x", vec![i0, i1], vec![], vec![], vec![]).unwrap_err();
        assert!(matches!(err, IrError::MultipleDefs { .. }));
    }

    #[test]
    fn rejects_undefined_use() {
        let g = VReg::new(RegClass::Gr, 0);
        let ghost = VReg::new(RegClass::Gr, 9);
        let i0 = Inst::new(InstId(0), Opcode::Mov, Some(g), vec![ghost.into()], None);
        let err = LoopIr::new("x", vec![i0], vec![], vec![], vec![]).unwrap_err();
        assert!(matches!(err, IrError::UndefinedUse { .. }));
    }

    #[test]
    fn carried_self_use_is_legal() {
        // acc = acc[-1] + c : a reduction.
        let acc = VReg::new(RegClass::Gr, 0);
        let c = VReg::new(RegClass::Gr, 1);
        let i0 = Inst::new(
            InstId(0),
            Opcode::Add,
            Some(acc),
            vec![SrcOperand::carried(acc, 1), c.into()],
            None,
        );
        let lp = LoopIr::new("red", vec![i0], vec![], vec![], vec![c]).unwrap();
        assert_eq!(lp.insts().len(), 1);
    }

    #[test]
    fn rejects_zero_omega_cycle() {
        let a = VReg::new(RegClass::Gr, 0);
        let b = VReg::new(RegClass::Gr, 1);
        let i0 = Inst::new(InstId(0), Opcode::Add, Some(a), vec![b.into()], None);
        let i1 = Inst::new(InstId(1), Opcode::Add, Some(b), vec![a.into()], None);
        let err = LoopIr::new("cyc", vec![i0, i1], vec![], vec![], vec![]).unwrap_err();
        assert!(matches!(err, IrError::ZeroOmegaCycle { .. }));
    }

    #[test]
    fn rejects_load_without_memref() {
        let g = VReg::new(RegClass::Gr, 0);
        let i0 = Inst::new(
            InstId(0),
            Opcode::Load(DataClass::Int),
            Some(g),
            vec![],
            None,
        );
        let err = LoopIr::new("x", vec![i0], vec![], vec![], vec![]).unwrap_err();
        assert!(matches!(err, IrError::MemRefMismatch { .. }));
    }

    #[test]
    fn rejects_gather_whose_index_is_never_loaded() {
        let g = VReg::new(RegClass::Gr, 0);
        let idx_ref = MemoryRef::new(
            "b[i]",
            DataClass::Int,
            AccessPattern::Affine { base: 0, stride: 4 },
            4,
        );
        let tgt_ref = MemoryRef::new(
            "a[b[i]]",
            DataClass::Int,
            AccessPattern::Gather {
                index: MemRefId(0),
                base: 0x1000,
                elem_bytes: 4,
                region_bytes: 1 << 16,
            },
            4,
        );
        // Only the gather target is loaded; its index ref is never loaded.
        let i0 = Inst::new(
            InstId(0),
            Opcode::Load(DataClass::Int),
            Some(g),
            vec![],
            Some(MemRefId(1)),
        );
        let err = LoopIr::new("x", vec![i0], vec![idx_ref, tgt_ref], vec![], vec![]).unwrap_err();
        assert!(matches!(err, IrError::PatternSourceNotLoaded { .. }));
    }

    #[test]
    fn def_lookup_and_display() {
        let lp = simple_loop();
        let text = lp.to_string();
        assert!(text.contains("loop t {"));
        assert!(text.contains("ld"));
        let first_dst = lp.insts()[0].dst().unwrap();
        assert_eq!(lp.def_of(first_dst), Some(InstId(0)));
    }

    #[test]
    fn vreg_counts() {
        let lp = simple_loop();
        // load dst, add dst, live-in c.
        assert_eq!(lp.vreg_count(RegClass::Gr), 3);
        assert_eq!(lp.vreg_count(RegClass::Fr), 0);
    }
}
