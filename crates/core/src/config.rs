//! Compilation policies and configuration.

use ltsp_hlo::HloConfig;
use ltsp_pipeliner::PipelineOptions;

/// How expected-latency hints are assigned to loads — the experimental
/// arms of the paper's Sec. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyPolicy {
    /// No latency boosting at all (the comparison baseline).
    Baseline,
    /// Every load hinted at the L3 typical latency — the "headroom"
    /// setting of Fig. 7/9 ("quite pessimistic").
    AllLoadsL3,
    /// Every FP load hinted at the L2 typical latency — the moderate
    /// general setting of Fig. 8 (FP loads bypass L1, so this schedules
    /// them for roughly twice their minimum latency).
    AllFpLoadsL2,
    /// HLO-directed hints from the prefetcher heuristics (Sec. 3.2), plus
    /// the default L2 hint for unhinted FP loads the paper keeps enabled.
    HloHints,
    /// Hints from measured per-reference miss latencies — the "dynamic
    /// cache-miss sampling" direction of the paper's outlook (Sec. 6).
    /// Requires [`CompileConfig::miss_profile`]; references the sampler
    /// saw hitting close caches get no hint, so the static-information
    /// failure modes (445.gobmk) disappear.
    MissSampled,
}

impl std::fmt::Display for LatencyPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatencyPolicy::Baseline => write!(f, "baseline"),
            LatencyPolicy::AllLoadsL3 => write!(f, "all-loads-L3"),
            LatencyPolicy::AllFpLoadsL2 => write!(f, "all-fp-L2"),
            LatencyPolicy::HloHints => write!(f, "hlo-hints"),
            LatencyPolicy::MissSampled => write!(f, "miss-sampled"),
        }
    }
}

/// Full compile-time configuration for one experimental arm.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileConfig {
    /// Hint-assignment policy.
    pub policy: LatencyPolicy,
    /// Trip-count threshold `n`: boosts apply only in loops whose believed
    /// average trip count is at least `n` (0 disables the threshold, as in
    /// the paper's `n = 0` headroom arm). Exception: HLO
    /// "not prefetchable" hints (heuristic 1) override the threshold —
    /// expected long latencies make the optimization profitable even at
    /// low trip counts (Sec. 3.1, demonstrated on 429.mcf in Sec. 4.4).
    pub trip_threshold: u32,
    /// Whether profile (PGO) trip counts are available; otherwise the
    /// compiler falls back to static estimates.
    pub pgo: bool,
    /// Keep the paper's default L2 hint for FP loads without HLO hints.
    pub fp_default_l2: bool,
    /// Prefetcher configuration.
    pub hlo: HloConfig,
    /// Pipeliner configuration.
    pub pipeline: PipelineOptions,
    /// Per-memref sampled latency hints for [`LatencyPolicy::MissSampled`]
    /// (from [`crate::sample_miss_hints`]); ignored by other policies.
    pub miss_profile: Option<Vec<Option<ltsp_ir::LatencyHint>>>,
    /// Observed-hint overlay from the adaptive refinement loop
    /// (crates/adaptive): per-memref measured verdicts merged over the
    /// static policy per [`ltsp_hlo::ObservedOverlay::merge`]. Covered
    /// references bypass the trip-count threshold, like a miss profile;
    /// uncovered references fall back to the static policy unchanged.
    pub observed_overlay: Option<ltsp_hlo::ObservedOverlay>,
}

impl CompileConfig {
    /// The paper's production settings for a policy: trip threshold 32
    /// ("an empirically reasonable choice"), PGO on, FP default L2 hint on
    /// for the HLO policy, prefetching enabled.
    pub fn new(policy: LatencyPolicy) -> Self {
        CompileConfig {
            policy,
            trip_threshold: 32,
            pgo: true,
            fp_default_l2: policy == LatencyPolicy::HloHints,
            hlo: HloConfig::default(),
            pipeline: PipelineOptions::default(),
            miss_profile: None,
            observed_overlay: None,
        }
    }

    /// Attaches a sampled miss profile (enables
    /// [`LatencyPolicy::MissSampled`]).
    pub fn with_miss_profile(mut self, profile: Vec<Option<ltsp_ir::LatencyHint>>) -> Self {
        self.miss_profile = Some(profile);
        self
    }

    /// Attaches an observed-hint overlay from the adaptive refinement
    /// loop; covered references override the static policy.
    pub fn with_observed_overlay(mut self, overlay: ltsp_hlo::ObservedOverlay) -> Self {
        self.observed_overlay = Some(overlay);
        self
    }

    /// Sets the trip-count threshold.
    pub fn with_threshold(mut self, n: u32) -> Self {
        self.trip_threshold = n;
        self
    }

    /// Enables or disables PGO trip information.
    pub fn with_pgo(mut self, pgo: bool) -> Self {
        self.pgo = pgo;
        self
    }

    /// Enables or disables software prefetching.
    pub fn with_prefetch(mut self, enabled: bool) -> Self {
        self.hlo.prefetch_enabled = enabled;
        self
    }

    /// Enables the balanced-recurrence extension (the paper's stated
    /// future work): loads on violating recurrence cycles receive an equal
    /// share of the cycle's slack instead of being marked critical.
    pub fn with_balanced_recurrences(mut self, enabled: bool) -> Self {
        self.pipeline.balance_cycle_slack = enabled;
        self
    }

    /// Enables data speculation (Sec. 3.3's recurrence reduction):
    /// memory-flow edges on cycles that force the II above the Resource II
    /// are broken by advanced loads.
    pub fn with_data_speculation(mut self, enabled: bool) -> Self {
        self.pipeline.data_speculation = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = CompileConfig::new(LatencyPolicy::HloHints);
        assert_eq!(c.trip_threshold, 32);
        assert!(c.pgo);
        assert!(c.fp_default_l2);
        assert!(c.hlo.prefetch_enabled);
        // The FP default-L2 rider only applies to the HLO policy.
        assert!(!CompileConfig::new(LatencyPolicy::AllLoadsL3).fp_default_l2);
    }

    #[test]
    fn builder_methods() {
        let c = CompileConfig::new(LatencyPolicy::AllLoadsL3)
            .with_threshold(0)
            .with_pgo(false)
            .with_prefetch(false);
        assert_eq!(c.trip_threshold, 0);
        assert!(!c.pgo);
        assert!(!c.hlo.prefetch_enabled);
    }

    #[test]
    fn display_names() {
        assert_eq!(LatencyPolicy::HloHints.to_string(), "hlo-hints");
        assert_eq!(LatencyPolicy::Baseline.to_string(), "baseline");
    }
}
