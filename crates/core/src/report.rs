//! Text-report formatting for experiment results.

use ltsp_memsim::CycleCounters;

/// Geometric-mean gain of a set of per-benchmark percentage gains —
/// the "Geomean" bar of the paper's figures. Gains are combined as
/// speedup factors (`1 + g/100`).
pub fn geomean_gain(gains: &[f64]) -> f64 {
    if gains.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = gains.iter().map(|g| (1.0 + g / 100.0).max(1e-9).ln()).sum();
    ((log_sum / gains.len() as f64).exp() - 1.0) * 100.0
}

/// Formats a per-benchmark gain table with one column per experimental
/// arm, ending with the geomean row.
///
/// `rows` pairs each benchmark name with its per-arm gains (all rows must
/// have `arms.len()` entries).
pub fn format_gain_table(title: &str, arms: &[&str], rows: &[(String, Vec<f64>)]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{title}");
    let name_w = rows
        .iter()
        .map(|(n, _)| n.len())
        .chain(["Geomean".len()])
        .max()
        .unwrap_or(8)
        .max(9);
    let _ = write!(s, "{:<name_w$}", "benchmark");
    for a in arms {
        let _ = write!(s, " {a:>12}");
    }
    let _ = writeln!(s);
    for (name, gains) in rows {
        let _ = write!(s, "{name:<name_w$}");
        for g in gains {
            let _ = write!(s, " {:>11.2}%", g);
        }
        let _ = writeln!(s);
    }
    let _ = write!(s, "{:<name_w$}", "Geomean");
    for arm_idx in 0..arms.len() {
        let col: Vec<f64> = rows.iter().map(|(_, g)| g[arm_idx]).collect();
        let _ = write!(s, " {:>11.2}%", geomean_gain(&col));
    }
    let _ = writeln!(s);
    s
}

/// Formats one Fig.-10-style cycle-accounting bar as percentages of total.
pub fn format_cycle_accounting(label: &str, c: &CycleCounters) -> String {
    let t = c.total.max(1) as f64;
    format!(
        "{label}: total={} unstalled={:.1}% EXE={:.1}% L1D/FPU={:.1}% RSE={:.1}% flush={:.1}% FE={:.1}% (OzQ-full {:.1}%)",
        c.total,
        100.0 * c.unstalled as f64 / t,
        100.0 * c.be_exe_bubble as f64 / t,
        100.0 * c.be_l1d_fpu_bubble as f64 / t,
        100.0 * c.be_rse_bubble as f64 / t,
        100.0 * c.be_flush_bubble as f64 / t,
        100.0 * c.fe_bubble as f64 / t,
        100.0 * c.ozq_full_fraction(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_gains() {
        assert!((geomean_gain(&[10.0, 10.0, 10.0]) - 10.0).abs() < 1e-9);
        assert_eq!(geomean_gain(&[]), 0.0);
    }

    #[test]
    fn geomean_mixes_gains_and_losses() {
        // +100% and -50% cancel exactly (2.0 * 0.5 = 1.0).
        assert!(geomean_gain(&[100.0, -50.0]).abs() < 1e-9);
    }

    #[test]
    fn geomean_clamps_at_total_loss() {
        // -100% is a zero speedup factor; the ln-clamp keeps it finite and
        // the mean stays in (-100, 0].
        let g = geomean_gain(&[-100.0]);
        assert!(g.is_finite());
        assert!(g <= -99.0 && g > -100.0 - 1e-9, "clamped near -100: {g}");
        // One total loss dominates any finite gains but never overflows.
        let mixed = geomean_gain(&[-100.0, 50.0, 50.0]);
        assert!(mixed.is_finite() && mixed < 0.0);
    }

    #[test]
    fn geomean_single_negative_gain_is_identity() {
        assert!((geomean_gain(&[-25.0]) - -25.0).abs() < 1e-9);
    }

    #[test]
    fn table_contains_all_rows() {
        let rows = vec![
            ("429.mcf".to_string(), vec![12.0, 14.0]),
            ("403.gcc".to_string(), vec![0.0, 0.0]),
        ];
        let t = format_gain_table("Fig. 7", &["n=0", "n=32"], &rows);
        assert!(t.contains("429.mcf"));
        assert!(t.contains("Geomean"));
        assert!(t.contains("n=32"));
    }

    #[test]
    fn table_columns_align() {
        // Rows with names shorter and longer than "benchmark": every line
        // must come out the same width, i.e. the columns line up.
        let rows = vec![
            ("429.mcf".to_string(), vec![12.0]),
            ("444.namd_long_name".to_string(), vec![-3.5]),
        ];
        let t = format_gain_table("Fig. 8", &["hlo"], &rows);
        let widths: Vec<usize> = t
            .lines()
            .skip(1) // title line is free-form
            .map(|l| l.chars().count())
            .collect();
        assert!(widths.len() >= 4, "header + 2 rows + geomean");
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged columns: {widths:?}\n{t}"
        );
        // The numeric cells keep their fixed 13-char field: " {:>11.2}%".
        for line in t.lines().skip(2) {
            assert!(line.ends_with('%'), "numeric rows end in %: {line:?}");
        }
    }

    #[test]
    fn accounting_line_percentages() {
        let c = CycleCounters {
            total: 1000,
            unstalled: 500,
            be_exe_bubble: 300,
            be_l1d_fpu_bubble: 100,
            be_rse_bubble: 50,
            be_flush_bubble: 25,
            fe_bubble: 25,
            ..Default::default()
        };
        let line = format_cycle_accounting("base", &c);
        assert!(line.contains("unstalled=50.0%"));
        assert!(line.contains("EXE=30.0%"));
    }
}
