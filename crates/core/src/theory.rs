//! The closed-form cost/benefit model of the paper's Sec. 2.
//!
//! Notation (matching the paper): a load's exposable latency is `L`
//! cycles; the schedule places its first use `d` cycles beyond the minimum
//! distance; `c = d / L` is the coverage ratio (Eq. 1); `k` instances of
//! the load are outstanding before the first use (the clustering factor);
//! `d = (k − 1) · II` clusters exactly `k` instances (Eq. 3). The total
//! stall reduction is `100 · (1 − (1 − c) / k)` percent (Eq. 2, plotted in
//! Fig. 5).

/// Coverage ratio `c = d / L` (Eq. 1).
///
/// # Panics
///
/// Panics if `exposable_latency == 0`.
pub fn coverage_ratio(scheduled_extra: u32, exposable_latency: u32) -> f64 {
    assert!(exposable_latency > 0, "exposable latency must be positive");
    f64::from(scheduled_extra) / f64::from(exposable_latency)
}

/// Stall-reduction percentage `100 · (1 − (1 − c) / k)` (Eq. 2).
///
/// `c` is clamped to `[0, 1]` (a schedule cannot cover more than the whole
/// latency usefully) and `k ≥ 1`.
pub fn stall_reduction_percent(coverage: f64, clustering: u32) -> f64 {
    let c = coverage.clamp(0.0, 1.0);
    let k = f64::from(clustering.max(1));
    100.0 * (1.0 - (1.0 - c) / k)
}

/// Clustering factor achieved by an additional scheduled latency `d` at a
/// given II: `k = d / II + 1` (inverse of Eq. 3).
pub fn clustering_factor(scheduled_extra: u32, ii: u32) -> u32 {
    scheduled_extra / ii.max(1) + 1
}

/// The additional scheduled latency needed to cluster `k` instances:
/// `d = (k − 1) · II` (Eq. 3).
pub fn required_extra_latency(clustering: u32, ii: u32) -> u32 {
    clustering.saturating_sub(1) * ii
}

/// Expected stall cycles over `n` kernel iterations with and without
/// latency-tolerant scheduling (the Sec. 2.1 derivation):
/// without, every iteration stalls `L` cycles; with, one stall of `L − d`
/// cycles occurs every `k` iterations.
pub fn stall_cycles(n: u64, exposable_latency: u32, scheduled_extra: u32, ii: u32) -> (u64, u64) {
    let l = u64::from(exposable_latency);
    let d = u64::from(scheduled_extra.min(exposable_latency));
    let k = u64::from(clustering_factor(scheduled_extra, ii));
    let without = n * l;
    let with = n.div_ceil(k) * (l - d);
    (without, with)
}

/// One point of Fig. 5: `(k, reduction%)`.
pub type Fig5Point = (u32, f64);

/// The four curves of Fig. 5 (coverage ratios 1, 0.5, 0.1, 0.01) over
/// clustering factors 1..=8.
pub fn fig5_curves() -> Vec<(f64, Vec<Fig5Point>)> {
    [1.0, 0.5, 0.1, 0.01]
        .into_iter()
        .map(|c| {
            let pts = (1..=8)
                .map(|k| (k, stall_reduction_percent(c, k)))
                .collect();
            (c, pts)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_ratio_basic() {
        assert!((coverage_ratio(2, 13) - 2.0 / 13.0).abs() < 1e-12);
        assert_eq!(coverage_ratio(0, 10), 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn coverage_zero_latency_panics() {
        let _ = coverage_ratio(1, 0);
    }

    #[test]
    fn paper_example_two_thirds_reduction() {
        // Sec. 2.1: "a clustering factor of 3 results in an overall stall
        // reduction of two-thirds" at negligible coverage.
        let r = stall_reduction_percent(0.0, 3);
        assert!((r - 100.0 * (2.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn full_coverage_kills_all_stalls() {
        for k in 1..8 {
            assert!((stall_reduction_percent(1.0, k) - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn eq3_round_trips() {
        for ii in 1..6 {
            for k in 1..9 {
                let d = required_extra_latency(k, ii);
                assert_eq!(clustering_factor(d, ii), k);
            }
        }
    }

    #[test]
    fn paper_running_example_numbers() {
        // II = 1, d = 2 -> k = 3; L = 13 -> stall 11 every 3 iterations.
        assert_eq!(clustering_factor(2, 1), 3);
        let (without, with) = stall_cycles(300, 13, 2, 1);
        assert_eq!(without, 300 * 13);
        assert_eq!(with, 100 * 11);
    }

    #[test]
    fn fig5_shape() {
        let curves = fig5_curves();
        assert_eq!(curves.len(), 4);
        for (c, pts) in &curves {
            assert_eq!(pts.len(), 8);
            // Monotone increasing in k.
            for w in pts.windows(2) {
                assert!(w[1].1 >= w[0].1, "curve c={c} must rise with k");
            }
            // k = 1 point equals 100c.
            assert!((pts[0].1 - 100.0 * c).abs() < 1e-9);
        }
    }

    #[test]
    fn reduction_monotone_in_coverage() {
        for k in 1..6 {
            let mut prev = -1.0;
            for i in 0..=10 {
                let c = f64::from(i) / 10.0;
                let r = stall_reduction_percent(c, k);
                assert!(r >= prev);
                prev = r;
            }
        }
    }
}
