//! The compile-side cache hook: content-addressed memoization of
//! [`compile_loop_with_profile_traced`] results.
//!
//! The cache key is a [`Fingerprint`] over the **canonicalized** inputs:
//!
//! - the loop, re-printed through [`LoopIr`]'s lossless `Display` (so
//!   formatting, comments and blank lines in a `.loop` file never split
//!   the key space);
//! - the full [`CompileConfig`] (policy, threshold, PGO, prefetcher and
//!   pipeliner knobs, miss profile) via its [`CompileConfig::fingerprint`];
//! - the machine model and the trip estimate's bit pattern.
//!
//! Any change to any of these moves the key, so a stale kernel can never
//! be served across a configuration change — the eviction policy only
//! affects *whether* a hit happens, never *what* a hit returns.

use std::sync::Arc;

use ltsp_cache::{CacheConfig, Fingerprint, FingerprintHasher, ShardedLru};
use ltsp_ir::LoopIr;
use ltsp_machine::MachineModel;
use ltsp_telemetry::phase::{Phase, PhaseTimer};
use ltsp_telemetry::Telemetry;

use crate::compile::{compile_loop_with_profile_phased, CompiledLoop};
use crate::config::CompileConfig;

impl CompileConfig {
    /// A stable fingerprint over every compilation-relevant field.
    ///
    /// Canonicalization rides on the derived `Debug` representation: it
    /// covers all fields recursively (including [`ltsp_hlo::HloConfig`]
    /// and [`ltsp_pipeliner::PipelineOptions`]), is deterministic within
    /// a build, and automatically tracks future field additions — a new
    /// knob can never silently alias two configs onto one key.
    pub fn fingerprint(&self) -> Fingerprint {
        Fingerprint::of_str(&format!("{self:?}"))
    }
}

/// A content-addressed cache of compiled loops (see the module docs for
/// the key derivation).
pub type CompileCache = ShardedLru<CompiledLoop>;

/// Builds a [`CompileCache`] with the given total byte budget.
pub fn new_compile_cache(byte_budget: usize) -> CompileCache {
    CompileCache::new(CacheConfig {
        byte_budget,
        ..CacheConfig::default()
    })
}

/// Derives the content-addressed key for one compile request.
pub fn compile_key(
    lp: &LoopIr,
    machine: &MachineModel,
    cfg: &CompileConfig,
    trip_estimate: f64,
) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_str("compile-v1");
    h.write_str(&lp.to_string());
    h.write_fingerprint(cfg.fingerprint());
    h.write_fingerprint(Fingerprint::of_str(&format!("{machine:?}")));
    h.write_f64(trip_estimate);
    h.finish()
}

/// Rough retained-size estimate for byte-budget accounting: the `Debug`
/// rendering covers the loop body, the kernel slots and the statistics
/// proportionally, and costs a fraction of the compile the entry just
/// paid for (it only runs on the insert path).
fn approx_bytes(c: &CompiledLoop) -> usize {
    format!("{c:?}").len()
}

/// [`compile_loop_with_profile_traced`] behind a [`CompileCache`]: returns
/// the cached kernel for a previously seen (loop, config, machine, trip)
/// tuple, or compiles, caches and returns. The boolean is `true` on a
/// cache hit.
///
/// A hit returns the identical [`CompiledLoop`] the cold compile produced
/// (shared via `Arc`, so hits are pointer clones); because compilation is
/// a deterministic pure function of the key, hit and miss paths are
/// indistinguishable to the caller except in latency. Note that a hit
/// emits no compile-phase telemetry — the compile being skipped is the
/// point — so callers that need a decision trace for a specific request
/// should bypass the cache for it.
pub fn compile_loop_cached(
    cache: &CompileCache,
    lp: &LoopIr,
    machine: &MachineModel,
    cfg: &CompileConfig,
    trip_estimate: f64,
    tel: &Telemetry,
) -> (Arc<CompiledLoop>, bool) {
    compile_loop_cached_phased(cache, lp, machine, cfg, trip_estimate, tel, None)
}

/// [`compile_loop_cached`] with optional per-phase wall-clock
/// attribution: a cold compile books its time under the compile phases
/// (`hlo`/`ddg`/`mrt`/`sched`/`regalloc`), a hit books the probe under
/// `cache_lookup`.
pub fn compile_loop_cached_phased(
    cache: &CompileCache,
    lp: &LoopIr,
    machine: &MachineModel,
    cfg: &CompileConfig,
    trip_estimate: f64,
    tel: &Telemetry,
    phases: Option<&PhaseTimer>,
) -> (Arc<CompiledLoop>, bool) {
    let key = compile_key(lp, machine, cfg, trip_estimate);
    let t0 = std::time::Instant::now();
    let (compiled, hit) = cache.get_or_insert_with(key, approx_bytes, || {
        compile_loop_with_profile_phased(lp, machine, cfg, trip_estimate, tel, phases)
    });
    if hit {
        if let Some(p) = phases {
            p.add_us(Phase::CacheLookup, t0.elapsed().as_micros() as u64);
        }
    }
    (compiled, hit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_loop_with_profile_traced;
    use crate::config::LatencyPolicy;
    use ltsp_workloads::saxpy;

    #[test]
    fn config_fingerprint_discriminates_every_knob() {
        let base = CompileConfig::new(LatencyPolicy::HloHints);
        let fps = [
            base.fingerprint(),
            CompileConfig::new(LatencyPolicy::Baseline).fingerprint(),
            base.clone().with_threshold(0).fingerprint(),
            base.clone().with_pgo(false).fingerprint(),
            base.clone().with_prefetch(false).fingerprint(),
            base.clone().with_balanced_recurrences(true).fingerprint(),
            base.clone().with_data_speculation(true).fingerprint(),
            // The adaptive loop's observed-hint overlay is a compile
            // input like any other: a config carrying one must never
            // alias the static config's key.
            base.clone()
                .with_observed_overlay(ltsp_hlo::ObservedOverlay::new(vec![Some(
                    ltsp_hlo::ObservedVerdict {
                        hint: ltsp_hlo::ObservedHint::Level(ltsp_ir::LatencyHint::L3),
                        drop_prefetch: false,
                    },
                )]))
                .fingerprint(),
            base.clone()
                .with_observed_overlay(ltsp_hlo::ObservedOverlay::new(vec![Some(
                    ltsp_hlo::ObservedVerdict {
                        hint: ltsp_hlo::ObservedHint::Level(ltsp_ir::LatencyHint::L3),
                        drop_prefetch: true,
                    },
                )]))
                .fingerprint(),
        ];
        for i in 0..fps.len() {
            for j in i + 1..fps.len() {
                assert_ne!(fps[i], fps[j], "configs {i} and {j} collide");
            }
        }
        assert_eq!(base.fingerprint(), base.clone().fingerprint());
    }

    #[test]
    fn key_tracks_loop_text_config_and_trip() {
        let m = MachineModel::itanium2();
        let cfg = CompileConfig::new(LatencyPolicy::HloHints);
        let lp = saxpy("s");
        let k = compile_key(&lp, &m, &cfg, 100.0);
        assert_eq!(k, compile_key(&lp, &m, &cfg, 100.0));
        assert_ne!(k, compile_key(&saxpy("s2"), &m, &cfg, 100.0));
        assert_ne!(k, compile_key(&lp, &m, &cfg, 10.0));
        assert_ne!(
            k,
            compile_key(&lp, &m, &CompileConfig::new(LatencyPolicy::Baseline), 100.0)
        );
    }

    #[test]
    fn hit_returns_the_cold_compile() {
        let m = MachineModel::itanium2();
        let cfg = CompileConfig::new(LatencyPolicy::HloHints);
        let lp = saxpy("s");
        let cache = new_compile_cache(1 << 20);
        let tel = Telemetry::disabled();
        let (cold, hit0) = compile_loop_cached(&cache, &lp, &m, &cfg, 100.0, &tel);
        let (warm, hit1) = compile_loop_cached(&cache, &lp, &m, &cfg, 100.0, &tel);
        assert!(!hit0);
        assert!(hit1);
        assert!(Arc::ptr_eq(&cold, &warm), "a hit is a pointer clone");
        let fresh = compile_loop_with_profile_traced(&lp, &m, &cfg, 100.0, &tel);
        assert_eq!(
            format!("{:?}", *warm),
            format!("{fresh:?}"),
            "cached result is byte-identical to a fresh compile"
        );
    }
}
