//! The compiler driver: HLO → criticality → latency-tolerant pipelining.

use ltsp_hlo::{run_hlo_traced, HintReason, HloReport};
use ltsp_ir::{DataClass, InstId, LatencyHint, LoopIr, Opcode, RegClass};
use ltsp_machine::LatencyQuery;
use ltsp_machine::MachineModel;
use ltsp_pipeliner::{
    acyclic_schedule, pipeline_loop_phased, LoadClassification, ModuloSchedule, PipelineStats,
    RegAllocation,
};
use ltsp_telemetry::phase::{time_opt, Phase, PhaseTimer};
use ltsp_telemetry::{Event, Telemetry};

use crate::config::{CompileConfig, LatencyPolicy};

/// The result of compiling one loop under a policy.
#[derive(Debug, Clone)]
pub struct CompiledLoop {
    /// The loop after HLO (prefetches inserted, hints attached).
    pub lp: LoopIr,
    /// The kernel schedule — a software pipeline, or the acyclic fallback
    /// when pipelining was rejected.
    pub kernel: ModuloSchedule,
    /// True when the loop was software-pipelined.
    pub pipelined: bool,
    /// Pipeliner statistics (present when pipelined).
    pub stats: Option<PipelineStats>,
    /// Register allocation (present when pipelined).
    pub regs: Option<RegAllocation>,
    /// The HLO prefetcher's report.
    pub hlo: HloReport,
    /// Total registers the loop occupies (all classes, rotating + static) —
    /// drives the simulator's RSE model and the Sec. 4.5 statistics.
    pub regs_total: u32,
    /// The trip estimate the compiler believed.
    pub trip_estimate: f64,
    /// Final per-load criticality/boost classification (when pipelined).
    pub classification: Option<LoadClassification>,
}

impl CompiledLoop {
    /// Registers used in one class (0 when the acyclic fallback estimated
    /// usage is requested per class — use `regs_total` there).
    pub fn regs_in_class(&self, class: RegClass) -> u32 {
        self.regs.map_or(0, |r| r.total(class))
    }

    /// The latency the final schedule assumed for a load (`None` for
    /// non-loads): the hint-derived expected latency for boosted loads,
    /// the base latency otherwise (and always for the acyclic fallback).
    pub fn scheduled_load_latency_of(&self, machine: &MachineModel, inst: InstId) -> Option<u32> {
        match self.lp.inst(inst).op() {
            Opcode::Load(dc) => {
                let q = self
                    .classification
                    .as_ref()
                    .map_or(LatencyQuery::Base, |c| c.query(inst));
                Some(machine.load_latency(dc, q))
            }
            _ => None,
        }
    }
}

/// Builds the per-load hint function implied by a policy (see
/// [`LatencyPolicy`] and the trip-threshold semantics on
/// [`CompileConfig`]).
fn hint_for_load(
    lp: &LoopIr,
    hlo: &HloReport,
    cfg: &CompileConfig,
    trip_estimate: f64,
    inst: InstId,
) -> Option<LatencyHint> {
    let above_threshold = trip_estimate >= f64::from(cfg.trip_threshold);
    let dc = match lp.inst(inst).op() {
        Opcode::Load(dc) => dc,
        _ => return None,
    };
    // Observed-overlay verdicts (the adaptive refinement loop) override
    // the static policy for covered references and bypass the trip
    // threshold: a measurement is stronger evidence than the static
    // profitability guard (same rationale as MissSampled below).
    if let Some(overlay) = &cfg.observed_overlay {
        if let Some(m) = lp.inst(inst).mem() {
            if let Some(obs) = overlay.get(m) {
                return match obs.hint {
                    ltsp_hlo::ObservedHint::Fast => None,
                    ltsp_hlo::ObservedHint::Level(h) => Some(h),
                };
            }
        }
    }
    match cfg.policy {
        LatencyPolicy::Baseline => None,
        LatencyPolicy::AllLoadsL3 => above_threshold.then_some(LatencyHint::L3),
        LatencyPolicy::AllFpLoadsL2 => {
            (above_threshold && dc == DataClass::Fp).then_some(LatencyHint::L2)
        }
        LatencyPolicy::HloHints => {
            let m = lp.inst(inst).mem()?;
            let decision = hlo.decisions.get(m.index())?;
            if let Some(h) = decision.hint {
                // Heuristic-1 hints (unprefetchable, expected long latency)
                // apply regardless of trip count; others respect the
                // threshold.
                let overrides = decision.reason == Some(HintReason::NotPrefetchable);
                if overrides || above_threshold {
                    return Some(h);
                }
                return None;
            }
            // Default L2 hint for unhinted FP loads.
            (cfg.fp_default_l2 && dc == DataClass::Fp && above_threshold).then_some(LatencyHint::L2)
        }
        LatencyPolicy::MissSampled => {
            // Sampled latencies are direct evidence of exposed misses, so
            // they apply regardless of the trip count (Sec. 3.1: latency
            // information can justify the optimization even in low-trip
            // loops).
            let m = lp.inst(inst).mem()?;
            cfg.miss_profile
                .as_ref()
                .and_then(|p| p.get(m.index()).copied().flatten())
        }
    }
}

/// Samples per-reference miss behaviour by executing the baseline-compiled
/// loop for `sample_entries` entries of `trip` iterations, then derives a
/// latency hint per memory reference: references whose average demand
/// latency reaches the L3 service range get an L3 hint, the L2 range an L2
/// hint, near-hits none. This is the "dynamic cache-miss sampling" oracle
/// of the paper's outlook (Sec. 6).
pub fn sample_miss_hints(
    lp: &LoopIr,
    machine: &MachineModel,
    trip: u64,
    sample_entries: u32,
    stream_mode: ltsp_memsim::StreamMode,
    seed: u64,
) -> Vec<Option<LatencyHint>> {
    let cfg = CompileConfig::new(LatencyPolicy::Baseline);
    let compiled = compile_loop_with_profile(lp, machine, &cfg, trip as f64);
    let mut ex = ltsp_memsim::Executor::new(
        &compiled.lp,
        &compiled.kernel,
        machine,
        compiled.regs_total,
        ltsp_memsim::ExecutorConfig {
            seed,
            stream_mode,
            ..ltsp_memsim::ExecutorConfig::default()
        },
    );
    // Warm up the caches first, then sample steady-state latencies — a
    // sampling profiler sees the whole run, which is dominated by the
    // steady state, not the cold start.
    for _ in 0..sample_entries.max(1) {
        ex.run_entry(trip.max(1));
    }
    ex.reset_ref_stats();
    for _ in 0..sample_entries.max(1) {
        ex.run_entry(trip.max(1));
    }
    let l2_floor = f64::from(machine.caches().l2.best_latency) - 1.0;
    let l3_floor = f64::from(machine.caches().l3.best_latency) + 2.0;
    ex.ref_stats()
        .iter()
        .take(lp.memrefs().len()) // ignore HLO-added refs, none today
        .map(|&(count, lat_sum)| {
            if count == 0 {
                return None;
            }
            let avg = lat_sum as f64 / count as f64;
            if avg >= l3_floor {
                Some(LatencyHint::L3)
            } else if avg >= l2_floor {
                Some(LatencyHint::L2)
            } else {
                None
            }
        })
        .collect()
}

/// Compiles a loop with the configured policy and a default trip estimate.
///
/// Equivalent to [`compile_loop_with_profile`] with the HLO's default
/// trip assumption; use the profile variant when trip information (PGO or
/// static) is available.
pub fn compile_loop(lp: &LoopIr, machine: &MachineModel, cfg: &CompileConfig) -> CompiledLoop {
    compile_loop_with_profile(lp, machine, cfg, cfg.hlo.default_trip_estimate)
}

/// Compiles a loop believing `trip_estimate` iterations per entry.
///
/// Pipeline: (1) the HLO inserts software prefetches and computes latency
/// hints from its heuristics; (2) the policy's hint function is formed,
/// applying the trip-count threshold; (3) the pipeliner runs criticality
/// analysis and latency-tolerant iterative modulo scheduling with the
/// register-allocation fallback ladder; (4) if pipelining is rejected, the
/// loop falls back to an acyclic list schedule (no overlap).
pub fn compile_loop_with_profile(
    lp: &LoopIr,
    machine: &MachineModel,
    cfg: &CompileConfig,
    trip_estimate: f64,
) -> CompiledLoop {
    compile_loop_with_profile_traced(lp, machine, cfg, trip_estimate, &Telemetry::disabled())
}

/// Emits one [`Event::BoostAssigned`] per load the final kernel schedules
/// at a boosted latency: the heuristic that justified the hint, the base
/// and scheduled latencies, the chosen stage count `k = ceil(lat/II)` and
/// the latency tolerance bought, `d = (k−1)·II`.
fn emit_boost_events(
    tel: &Telemetry,
    lp: &LoopIr,
    machine: &MachineModel,
    cfg: &CompileConfig,
    hlo: &HloReport,
    cls: &LoadClassification,
    ii: u32,
) {
    let mut boosted = 0u64;
    for inst in lp.insts() {
        let dc = match inst.op() {
            Opcode::Load(dc) => dc,
            _ => continue,
        };
        let query = cls.query(inst.id());
        if query == LatencyQuery::Base {
            continue;
        }
        let base_latency = machine.load_latency(dc, LatencyQuery::Base);
        let scheduled_latency = machine.load_latency(dc, query);
        let ii = ii.max(1);
        let k = scheduled_latency.div_ceil(ii).max(1);
        let heuristic = match cfg.policy {
            LatencyPolicy::MissSampled => "sampled",
            LatencyPolicy::HloHints => inst
                .mem()
                .and_then(|m| hlo.decisions.get(m.index()))
                .and_then(|d| d.reason)
                .map_or("policy", HintReason::id),
            _ => "policy",
        };
        tel.emit(Event::BoostAssigned {
            loop_name: lp.name().to_string(),
            load: format!("i{}", inst.id().index()),
            heuristic,
            base_latency,
            scheduled_latency,
            k,
            boost: (k - 1) * ii,
            ii,
            slack: i64::from(k * ii) - i64::from(scheduled_latency),
        });
        boosted += 1;
    }
    tel.counter_add("compile.boosted_loads", boosted);
}

/// [`compile_loop_with_profile`] with the whole decision trail recorded on
/// a telemetry sink: HLO hint marking, criticality verdicts, scheduling
/// attempts and fallbacks (via the traced HLO/pipeliner entry points),
/// per-phase wall-clock spans, and a [`Event::BoostAssigned`] per load the
/// kernel schedules at a boosted latency.
pub fn compile_loop_with_profile_traced(
    lp: &LoopIr,
    machine: &MachineModel,
    cfg: &CompileConfig,
    trip_estimate: f64,
    tel: &Telemetry,
) -> CompiledLoop {
    compile_loop_with_profile_phased(lp, machine, cfg, trip_estimate, tel, None)
}

/// [`compile_loop_with_profile_traced`] with optional per-phase
/// wall-clock attribution on a [`PhaseTimer`]: `hlo` for high-level
/// optimization, and the pipeliner's `ddg`/`mrt`/`sched`/`regalloc`
/// split (the acyclic fallback books its DDG rebuild and list schedule
/// under `ddg`/`sched`). Timing is observational only.
pub fn compile_loop_with_profile_phased(
    lp: &LoopIr,
    machine: &MachineModel,
    cfg: &CompileConfig,
    trip_estimate: f64,
    tel: &Telemetry,
    phases: Option<&PhaseTimer>,
) -> CompiledLoop {
    let mut lp = lp.clone();
    let hlo = {
        let _span = tel.span(format!("hlo:{}", lp.name()));
        // The observed overlay rides into the prefetcher here (so it can
        // drop observed-redundant prefetches) rather than living in
        // `cfg.hlo` directly — the cache fingerprint then tracks it
        // exactly once, via `CompileConfig::observed_overlay`.
        let hlo_cfg;
        let hlo_cfg = if let Some(ov) = &cfg.observed_overlay {
            hlo_cfg = ltsp_hlo::HloConfig {
                observed: Some(ov.clone()),
                ..cfg.hlo.clone()
            };
            &hlo_cfg
        } else {
            &cfg.hlo
        };
        time_opt(phases, Phase::Hlo, || {
            run_hlo_traced(&mut lp, machine, Some(trip_estimate), hlo_cfg, tel)
        })
    };

    let hint_fn = |inst: InstId| hint_for_load(&lp, &hlo, cfg, trip_estimate, inst);
    let pipelined = {
        let _span = tel.span(format!("pipeline:{}", lp.name()));
        pipeline_loop_phased(&lp, machine, &hint_fn, &cfg.pipeline, tel, phases)
    };
    tel.counter_add("compile.loops", 1);
    match pipelined {
        Ok(p) => {
            let regs_total = p.regs.total(RegClass::Gr)
                + p.regs.total(RegClass::Fr)
                + p.regs.total(RegClass::Pr);
            if tel.is_enabled() {
                emit_boost_events(
                    tel,
                    &lp,
                    machine,
                    cfg,
                    &hlo,
                    &p.classification,
                    p.schedule.ii(),
                );
            }
            CompiledLoop {
                kernel: p.schedule,
                pipelined: true,
                stats: Some(p.stats),
                regs: Some(p.regs),
                hlo,
                regs_total,
                trip_estimate,
                classification: Some(p.classification),
                lp,
            }
        }
        Err(e) => {
            if tel.is_enabled() {
                tel.emit(Event::AcyclicFallback {
                    loop_name: lp.name().to_string(),
                    attempts: e.attempts,
                    min_ii: e.min_ii,
                });
                tel.counter_add("compile.acyclic_fallbacks", 1);
            }
            // Rebuild the base-latency DDG for the fallback.
            let ddg = time_opt(phases, Phase::Ddg, || {
                ltsp_ddg::Ddg::build_with_load_floor(&lp, machine, 0)
            });
            let kernel = time_opt(phases, Phase::Sched, || {
                acyclic_schedule(&lp, machine, &ddg)
            });
            let regs_total = (lp.vreg_count(RegClass::Gr)
                + lp.vreg_count(RegClass::Fr)
                + lp.vreg_count(RegClass::Pr)) as u32;
            CompiledLoop {
                kernel,
                pipelined: false,
                stats: None,
                regs: None,
                hlo,
                regs_total,
                trip_estimate,
                classification: None,
                lp,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltsp_workloads::{mcf_refresh, motion_search, saxpy, stream_sum};

    fn machine() -> MachineModel {
        MachineModel::itanium2()
    }

    #[test]
    fn baseline_compiles_and_pipelines() {
        let lp = saxpy("s");
        let c = compile_loop(
            &lp,
            &machine(),
            &CompileConfig::new(LatencyPolicy::Baseline),
        );
        assert!(c.pipelined);
        assert!(
            c.hlo.prefetches_inserted > 0,
            "prefetching is on by default"
        );
        assert_eq!(c.stats.unwrap().boosted_loads, 0);
    }

    #[test]
    fn headroom_policy_boosts_everything_above_threshold() {
        let lp = stream_sum("s", DataClass::Int, 256);
        let cfg = CompileConfig::new(LatencyPolicy::AllLoadsL3).with_threshold(32);
        let hi = compile_loop_with_profile(&lp, &machine(), &cfg, 1000.0);
        assert!(hi.stats.unwrap().boosted_loads > 0);
        let lo = compile_loop_with_profile(&lp, &machine(), &cfg, 10.0);
        assert_eq!(
            lo.stats.unwrap().boosted_loads,
            0,
            "below threshold: no boost"
        );
    }

    #[test]
    fn fp_policy_ignores_int_loads() {
        let lp = stream_sum("s", DataClass::Int, 256);
        let cfg = CompileConfig::new(LatencyPolicy::AllFpLoadsL2);
        let c = compile_loop_with_profile(&lp, &machine(), &cfg, 1000.0);
        assert_eq!(c.stats.unwrap().boosted_loads, 0);
        let lp_fp = stream_sum("s", DataClass::Fp, 256);
        let c_fp = compile_loop_with_profile(&lp_fp, &machine(), &cfg, 1000.0);
        assert!(c_fp.stats.unwrap().boosted_loads > 0);
    }

    #[test]
    fn hlo_hints_override_threshold_for_unprefetchable_loads() {
        // mcf's refresh_potential: trip 2.3 << 32, but the chase fields are
        // NotPrefetchable -> still boosted (the Sec. 4.4 scenario).
        let lp = mcf_refresh("rp", 1 << 25);
        let cfg = CompileConfig::new(LatencyPolicy::HloHints).with_threshold(32);
        let c = compile_loop_with_profile(&lp, &machine(), &cfg, 2.3);
        let stats = c.stats.unwrap();
        assert!(
            stats.boosted_loads >= 2,
            "delinquent fields boosted despite trip 2.3: {stats:?}"
        );
        assert!(stats.critical_loads >= 1, "the chase stays critical");
    }

    #[test]
    fn hlo_hints_respect_threshold_for_prefetchable_loads() {
        // h264ref motion search: prefetchable int loads, trip 10 < 32:
        // nothing boosted under HLO hints.
        let lp = motion_search("ms");
        let cfg = CompileConfig::new(LatencyPolicy::HloHints).with_threshold(32);
        let c = compile_loop_with_profile(&lp, &machine(), &cfg, 10.0);
        assert_eq!(c.stats.unwrap().boosted_loads, 0);
        // Headroom with no threshold boosts them.
        let cfg0 = CompileConfig::new(LatencyPolicy::AllLoadsL3).with_threshold(0);
        let c0 = compile_loop_with_profile(&lp, &machine(), &cfg0, 10.0);
        assert!(c0.stats.unwrap().boosted_loads > 0);
    }

    #[test]
    fn prefetch_disable_grows_hint_surface() {
        let lp = saxpy("s");
        let cfg_on = CompileConfig::new(LatencyPolicy::HloHints);
        let cfg_off = cfg_on.clone().with_prefetch(false);
        let on = compile_loop_with_profile(&lp, &machine(), &cfg_on, 1000.0);
        let off = compile_loop_with_profile(&lp, &machine(), &cfg_off, 1000.0);
        assert!(off.hlo.prefetches_inserted == 0);
        assert!(on.hlo.prefetches_inserted > 0);
        // Boost count under the default FP L2 rider stays >= on's.
        assert!(off.stats.unwrap().boosted_loads >= on.stats.unwrap().boosted_loads);
    }

    #[test]
    fn fallback_produces_single_stage() {
        // A loop that cannot pipeline within the II budget: huge RecMII vs
        // tiny register file is hard to construct; instead force a tiny
        // max II window on a recurrence-heavy loop.
        let lp = mcf_refresh("rp", 1 << 25);
        let mut cfg = CompileConfig::new(LatencyPolicy::Baseline);
        cfg.pipeline.max_ii_slack = 0;
        cfg.pipeline.budget_factor = 1;
        let c = compile_loop(&lp, &machine(), &cfg);
        if !c.pipelined {
            assert_eq!(c.kernel.stage_count(), 1);
        }
        // Either way the kernel is executable.
        assert!(c.kernel.ii() >= 1);
    }
}
