//! Latency-tolerant software pipelining: the paper's contribution,
//! assembled.
//!
//! This crate wires the substrates together into the compiler the paper
//! describes and the experiments it reports:
//!
//! - [`LatencyPolicy`] — the four configurations of Figs. 7–9: baseline,
//!   blanket L3 hints ("headroom"), blanket L2 hints on FP loads, and
//!   HLO-directed hints;
//! - [`compile_loop`] — HLO prefetching + hint assignment, criticality
//!   analysis, latency-tolerant modulo scheduling, rotating register
//!   allocation, and the acyclic fallback;
//! - [`theory`] — the closed-form cost/benefit model of Sec. 2
//!   (coverage ratio, clustering factor, Eq. 2's stall-reduction curve);
//! - [`run_benchmark`] / [`run_suite`] — the experiment harness that
//!   executes a synthetic benchmark under a policy on the simulator and
//!   reports per-benchmark gains and cycle accounting.

mod cache;
mod compile;
mod config;
mod report;
mod runner;
pub mod theory;

pub use cache::{
    compile_key, compile_loop_cached, compile_loop_cached_phased, new_compile_cache, CompileCache,
};
pub use compile::{
    compile_loop, compile_loop_with_profile, compile_loop_with_profile_phased,
    compile_loop_with_profile_traced, sample_miss_hints, CompiledLoop,
};
pub use config::{CompileConfig, LatencyPolicy};
pub use report::{format_cycle_accounting, format_gain_table, geomean_gain};
pub use runner::{
    benchmark_gain, default_jobs, run_benchmark, run_benchmark_sampled, run_benchmark_versioned,
    run_suite, run_suite_sampled, run_suite_versioned, set_default_jobs, suite_cycle_accounting,
    BenchRun, LoopRun, RunConfig, SuiteRun,
};
