//! The experiment harness: run synthetic benchmarks under a policy.

use std::sync::atomic::{AtomicUsize, Ordering};

use ltsp_ir::SplitMix64;
use ltsp_machine::MachineModel;
use ltsp_memsim::{CycleCounters, Executor, ExecutorConfig};
use ltsp_par::Pool;
use ltsp_telemetry::Telemetry;
use ltsp_workloads::{Benchmark, LoopSpec};

use crate::compile::compile_loop_with_profile_traced;
use crate::config::CompileConfig;

/// Process-wide default worker count picked up by [`RunConfig::new`]
/// (0 = not yet initialised).
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// The worker count new [`RunConfig`]s start with. Initialised lazily from
/// the `LTSP_JOBS` environment variable, defaulting to 1 (serial); binaries
/// with a `--jobs` flag override it via [`set_default_jobs`].
///
/// The default is deliberately serial, not [`ltsp_par::default_parallelism`]:
/// library consumers and tests get reproducible single-thread behavior
/// unless a binary (or CI via `LTSP_JOBS`) opts batches into parallelism —
/// and either way the determinism contract keeps artifacts byte-identical.
///
/// A *set but invalid* `LTSP_JOBS` (`0`, non-numeric) aborts the process
/// with a one-line diagnostic rather than silently running serial: a CI
/// matrix that typos its parallelism should fail loudly, not quietly
/// produce 1-thread timings.
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::Relaxed) {
        0 => {
            let jobs = match std::env::var("LTSP_JOBS") {
                Err(_) => 1,
                Ok(v) => ltsp_par::parse_jobs(&v).unwrap_or_else(|e| {
                    eprintln!("ltsp: LTSP_JOBS: {e}");
                    std::process::exit(2);
                }),
            };
            DEFAULT_JOBS.store(jobs, Ordering::Relaxed);
            jobs
        }
        j => j,
    }
}

/// Overrides the process-wide default worker count (clamped to ≥ 1).
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs.max(1), Ordering::Relaxed);
}

/// Configuration of one experimental run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Compiler configuration (policy, threshold, PGO, prefetching).
    pub compile: CompileConfig,
    /// Master seed; per-loop seeds derive from it and the loop identity,
    /// **not** from the policy — all arms of an experiment therefore see
    /// identical trip-count sequences and address streams.
    pub seed: u64,
    /// Scales every loop's entry count (tests use small values; the
    /// benchmark harness uses 1.0).
    pub entry_scale: f64,
    /// Execution-model knobs (front-end/flush/RSE fixed costs).
    pub exec: ExecutorConfig,
    /// Telemetry sink receiving compiler decision traces, phase spans and
    /// simulator metrics. Disabled by default (zero overhead).
    pub telemetry: Telemetry,
    /// Worker threads for batch layers ([`run_suite`] & friends). Results
    /// and telemetry are merged in input-index order, so any value ≥ 1
    /// produces byte-identical artifacts (see `DESIGN.md`, "Parallel
    /// execution & determinism contract").
    pub jobs: usize,
}

impl RunConfig {
    /// Default harness settings for a compile configuration.
    pub fn new(compile: CompileConfig) -> Self {
        RunConfig {
            compile,
            seed: 0x5EED_0001,
            entry_scale: 1.0,
            exec: ExecutorConfig::default(),
            telemetry: Telemetry::disabled(),
            jobs: default_jobs(),
        }
    }

    /// Sets the entry scale.
    pub fn with_entry_scale(mut self, scale: f64) -> Self {
        self.entry_scale = scale;
        self
    }

    /// Attaches a telemetry sink (shared — clones feed the same sink).
    pub fn with_telemetry(mut self, tel: &Telemetry) -> Self {
        self.telemetry = tel.clone();
        self
    }

    /// Sets the worker-thread count for batch layers (clamped to ≥ 1).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }
}

/// Measured execution of one loop under one policy.
#[derive(Debug, Clone)]
pub struct LoopRun {
    /// The loop's name.
    pub name: String,
    /// Accumulated cycle accounting.
    pub counters: CycleCounters,
    /// Kernel II.
    pub ii: u32,
    /// Pipeline stages (1 for the acyclic fallback).
    pub stages: u32,
    /// Whether the loop was software-pipelined.
    pub pipelined: bool,
    /// Loads scheduled at boosted latencies.
    pub boosted_loads: usize,
    /// Loads marked critical.
    pub critical_loads: usize,
    /// Registers allocated per class (GR, FR, PR), zero if not pipelined.
    pub regs: (u32, u32, u32),
    /// Modulo-scheduling attempts the pipeliner performed.
    pub schedule_attempts: u32,
}

/// Measured execution of one benchmark under one policy.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Benchmark name.
    pub name: &'static str,
    /// Per-loop measurements.
    pub loops: Vec<LoopRun>,
    /// Total cycles across the benchmark's hot loops.
    pub loop_cycles: u64,
}

impl BenchRun {
    /// Sums counters across the benchmark's loops.
    pub fn counters(&self) -> CycleCounters {
        self.loops
            .iter()
            .fold(CycleCounters::default(), |acc, l| acc + l.counters)
    }
}

/// All benchmarks of a suite under one policy.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// Per-benchmark runs, in suite order.
    pub runs: Vec<BenchRun>,
}

impl SuiteRun {
    /// Sums counters across the whole suite's hot loops.
    pub fn counters(&self) -> CycleCounters {
        self.runs
            .iter()
            .fold(CycleCounters::default(), |acc, r| acc + r.counters())
    }
}

fn fnv(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn run_loop(bench_name: &str, spec: &LoopSpec, machine: &MachineModel, rc: &RunConfig) -> LoopRun {
    let trip_estimate = if rc.compile.pgo {
        spec.train_trips.mean()
    } else {
        spec.static_trip_estimate
    };
    let compiled = compile_loop_with_profile_traced(
        &spec.loop_ir,
        machine,
        &rc.compile,
        trip_estimate,
        &rc.telemetry,
    );

    let loop_seed = rc.seed ^ fnv(bench_name) ^ fnv(&spec.name);
    let exec_cfg = ExecutorConfig {
        seed: loop_seed,
        stream_mode: spec.stream_mode,
        ..rc.exec
    };
    let mut ex = Executor::new(
        &compiled.lp,
        &compiled.kernel,
        machine,
        compiled.regs_total,
        exec_cfg,
    );
    ex.attach_telemetry(&rc.telemetry);
    let entries = ((f64::from(spec.entries) * rc.entry_scale).ceil() as u32).max(1);
    let mut trip_rng = SplitMix64::new(loop_seed ^ 0x7219);
    {
        let _span = rc.telemetry.span(format!("simulate:{}", spec.name));
        for _ in 0..entries {
            let trip = spec.ref_trips.sample(&mut trip_rng);
            ex.run_entry(trip);
        }
    }
    ex.export_metrics("sim");

    let (stats, regs) = (compiled.stats, compiled.regs);
    LoopRun {
        name: spec.name.clone(),
        counters: *ex.counters(),
        ii: compiled.kernel.ii(),
        stages: compiled.kernel.stage_count(),
        pipelined: compiled.pipelined,
        boosted_loads: stats.map_or(0, |s| s.boosted_loads),
        critical_loads: stats.map_or(0, |s| s.critical_loads),
        regs: regs.map_or((0, 0, 0), |r| {
            (
                r.total(ltsp_ir::RegClass::Gr),
                r.total(ltsp_ir::RegClass::Fr),
                r.total(ltsp_ir::RegClass::Pr),
            )
        }),
        schedule_attempts: stats.map_or(1, |s| s.schedule_attempts),
    }
}

fn run_loop_versioned(
    bench_name: &str,
    spec: &LoopSpec,
    machine: &MachineModel,
    rc: &RunConfig,
) -> LoopRun {
    let trip_estimate = if rc.compile.pgo {
        spec.train_trips.mean()
    } else {
        spec.static_trip_estimate
    };
    // Version 0: baseline kernel; version 1: the policy's boosted kernel,
    // compiled with the threshold disabled (dispatch happens at run time
    // on the *actual* trip count).
    let base_cfg = CompileConfig {
        policy: crate::LatencyPolicy::Baseline,
        ..rc.compile.clone()
    };
    let boost_cfg = rc.compile.clone().with_threshold(0);
    // Only the boosted version's compile is traced — the baseline version
    // makes no latency decisions worth recording.
    let base = compile_loop_with_profile_traced(
        &spec.loop_ir,
        machine,
        &base_cfg,
        trip_estimate,
        &Telemetry::disabled(),
    );
    let boost = compile_loop_with_profile_traced(
        &spec.loop_ir,
        machine,
        &boost_cfg,
        trip_estimate,
        &rc.telemetry,
    );
    debug_assert_eq!(
        base.lp, boost.lp,
        "policies only change scheduling, not the loop body"
    );

    let loop_seed = rc.seed ^ fnv(bench_name) ^ fnv(&spec.name);
    let exec_cfg = ExecutorConfig {
        seed: loop_seed,
        stream_mode: spec.stream_mode,
        ..rc.exec
    };
    let kernels = [base.kernel.clone(), boost.kernel.clone()];
    let regs = [base.regs_total, boost.regs_total];
    let mut ex = Executor::new_versioned(&boost.lp, &kernels, machine, &regs, exec_cfg);
    ex.attach_telemetry(&rc.telemetry);
    let entries = ((f64::from(spec.entries) * rc.entry_scale).ceil() as u32).max(1);
    let mut trip_rng = SplitMix64::new(loop_seed ^ 0x7219);
    let threshold = u64::from(rc.compile.trip_threshold);
    {
        let _span = rc.telemetry.span(format!("simulate:{}", spec.name));
        for _ in 0..entries {
            let trip = spec.ref_trips.sample(&mut trip_rng);
            let version = usize::from(trip >= threshold.max(1));
            ex.run_entry_version(version, trip);
        }
    }
    ex.export_metrics("sim");

    let (stats, regs) = (boost.stats, boost.regs);
    LoopRun {
        name: spec.name.clone(),
        counters: *ex.counters(),
        ii: boost.kernel.ii(),
        stages: boost.kernel.stage_count(),
        pipelined: boost.pipelined,
        boosted_loads: stats.map_or(0, |s| s.boosted_loads),
        critical_loads: stats.map_or(0, |s| s.critical_loads),
        regs: regs.map_or((0, 0, 0), |r| {
            (
                r.total(ltsp_ir::RegClass::Gr),
                r.total(ltsp_ir::RegClass::Fr),
                r.total(ltsp_ir::RegClass::Pr),
            )
        }),
        schedule_attempts: stats.map_or(1, |s| s.schedule_attempts),
    }
}

/// The shared batch layer behind every suite runner: flattens the suite
/// into (benchmark, loop) work items, maps them through a [`Pool`] sized
/// to [`RunConfig::jobs`] (per-item telemetry forked and spliced back in
/// index order — see [`Pool::map_traced`]), and regroups the results into
/// per-benchmark runs in suite order. The output is byte-for-byte
/// independent of the worker count.
fn pooled_suite<F>(label: &str, benchs: &[Benchmark], rc: &RunConfig, f: F) -> SuiteRun
where
    F: Fn(&Telemetry, &Benchmark, &LoopSpec) -> LoopRun + Sync,
{
    let items: Vec<(usize, &LoopSpec)> = benchs
        .iter()
        .enumerate()
        .flat_map(|(bi, b)| b.loops.iter().map(move |spec| (bi, spec)))
        .collect();
    let loops =
        Pool::new(rc.jobs).map_traced(&rc.telemetry, label, &items, |tel, _idx, &(bi, spec)| {
            f(tel, &benchs[bi], spec)
        });
    let mut runs: Vec<BenchRun> = benchs
        .iter()
        .map(|b| BenchRun {
            name: b.name,
            loops: Vec::new(),
            loop_cycles: 0,
        })
        .collect();
    for (&(bi, _), lr) in items.iter().zip(loops) {
        runs[bi].loop_cycles += lr.counters.total;
        runs[bi].loops.push(lr);
    }
    SuiteRun { runs }
}

/// Runs one benchmark with **trip-count versioning** (the paper's Sec. 6
/// outlook): each loop keeps a baseline kernel and the policy's boosted
/// kernel, and every entry dispatches on its *actual* trip count against
/// [`CompileConfig::trip_threshold`]. Low-trip executions take the cheap
/// kernel, long ones the latency-tolerant kernel — no profile needed.
pub fn run_benchmark_versioned(
    bench: &Benchmark,
    machine: &MachineModel,
    rc: &RunConfig,
) -> BenchRun {
    run_suite_versioned(std::slice::from_ref(bench), machine, rc)
        .runs
        .pop()
        .expect("one benchmark in, one run out")
}

/// Runs a whole suite with trip-count versioning.
pub fn run_suite_versioned(
    benchs: &[Benchmark],
    machine: &MachineModel,
    rc: &RunConfig,
) -> SuiteRun {
    pooled_suite("suite-versioned", benchs, rc, |tel, bench, spec| {
        let rc2 = RunConfig {
            telemetry: tel.clone(),
            ..rc.clone()
        };
        run_loop_versioned(bench.name, spec, machine, &rc2)
    })
}

/// Runs one benchmark with **dynamic cache-miss sampling** (the paper's
/// Sec. 6 outlook): each loop is first executed briefly under the baseline
/// compiler while recording per-reference average latencies
/// ([`crate::sample_miss_hints`]); the measured profile then drives the
/// [`crate::LatencyPolicy::MissSampled`] policy. References that actually
/// hit close caches get no hint — removing the static-information failure
/// modes — while genuinely delinquent references are boosted.
pub fn run_benchmark_sampled(
    bench: &Benchmark,
    machine: &MachineModel,
    rc: &RunConfig,
    sample_entries: u32,
) -> BenchRun {
    run_suite_sampled(std::slice::from_ref(bench), machine, rc, sample_entries)
        .runs
        .pop()
        .expect("one benchmark in, one run out")
}

/// Runs a whole suite with dynamic cache-miss sampling.
pub fn run_suite_sampled(
    benchs: &[Benchmark],
    machine: &MachineModel,
    rc: &RunConfig,
    sample_entries: u32,
) -> SuiteRun {
    pooled_suite("suite-sampled", benchs, rc, |tel, bench, spec| {
        let loop_seed = rc.seed ^ fnv(bench.name) ^ fnv(&spec.name);
        let sample_trip = spec.ref_trips.mean().round().max(1.0) as u64;
        let profile = crate::sample_miss_hints(
            &spec.loop_ir,
            machine,
            sample_trip,
            sample_entries,
            spec.stream_mode,
            loop_seed ^ 0x5A3,
        );
        let mut rc2 = rc.clone();
        rc2.telemetry = tel.clone();
        rc2.compile = CompileConfig {
            policy: crate::LatencyPolicy::MissSampled,
            miss_profile: Some(profile),
            ..rc.compile.clone()
        };
        run_loop(bench.name, spec, machine, &rc2)
    })
}

/// Runs one benchmark under the configuration.
pub fn run_benchmark(bench: &Benchmark, machine: &MachineModel, rc: &RunConfig) -> BenchRun {
    run_suite(std::slice::from_ref(bench), machine, rc)
        .runs
        .pop()
        .expect("one benchmark in, one run out")
}

/// Runs every benchmark of a suite.
pub fn run_suite(benchs: &[Benchmark], machine: &MachineModel, rc: &RunConfig) -> SuiteRun {
    pooled_suite("suite", benchs, rc, |tel, bench, spec| {
        let rc2 = RunConfig {
            telemetry: tel.clone(),
            ..rc.clone()
        };
        run_loop(bench.name, spec, machine, &rc2)
    })
}

/// Whole-benchmark speedup percentage of `var` over `base`.
///
/// The hot loops account for `pipelined_fraction` of the benchmark's
/// baseline time; the remainder is policy-invariant padding derived from
/// the baseline run, so a 2× loop speedup at fraction 0.5 yields ≈ +33%.
pub fn benchmark_gain(bench: &Benchmark, base: &BenchRun, var: &BenchRun) -> f64 {
    if bench.loops.is_empty() || base.loop_cycles == 0 {
        return 0.0;
    }
    let f = bench.pipelined_fraction.clamp(1e-6, 1.0);
    let bl = base.loop_cycles as f64;
    let vl = var.loop_cycles as f64;
    let nonloop = bl * (1.0 - f) / f;
    100.0 * ((bl + nonloop) / (vl + nonloop) - 1.0)
}

/// Bucket shares used to pad the policy-invariant (non-pipelined) portion
/// of a suite's cycle accounting: unstalled, EXE, L1D/FPU, RSE, FE, flush.
const NONLOOP_PROFILE: [f64; 6] = [0.55, 0.22, 0.08, 0.03, 0.07, 0.05];

/// Fig.-10-style whole-suite cycle accounting for a (baseline, variant)
/// pair: loop counters plus the shared non-loop padding implied by each
/// benchmark's `pipelined_fraction` (identical in both arms, as in
/// reality the unaffected code is).
pub fn suite_cycle_accounting(
    benchs: &[Benchmark],
    base: &SuiteRun,
    var: &SuiteRun,
) -> (CycleCounters, CycleCounters) {
    let mut total_nonloop = 0u64;
    for (bench, brun) in benchs.iter().zip(&base.runs) {
        if bench.loops.is_empty() || brun.loop_cycles == 0 {
            continue;
        }
        let f = bench.pipelined_fraction.clamp(1e-6, 1.0);
        total_nonloop += (brun.loop_cycles as f64 * (1.0 - f) / f) as u64;
    }
    let pad = |mut c: CycleCounters| -> CycleCounters {
        let n = total_nonloop as f64;
        c.total += total_nonloop;
        c.unstalled += (n * NONLOOP_PROFILE[0]) as u64;
        c.be_exe_bubble += (n * NONLOOP_PROFILE[1]) as u64;
        c.be_l1d_fpu_bubble += (n * NONLOOP_PROFILE[2]) as u64;
        c.be_rse_bubble += (n * NONLOOP_PROFILE[3]) as u64;
        c.fe_bubble += (n * NONLOOP_PROFILE[4]) as u64;
        c.be_flush_bubble += (n * NONLOOP_PROFILE[5]) as u64;
        // Rounding drift: force the partition invariant.
        let stalls = c.stall_cycles() + c.unstalled;
        if stalls < c.total {
            c.unstalled += c.total - stalls;
        } else {
            c.total = stalls;
        }
        c
    };
    (pad(base.counters()), pad(var.counters()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LatencyPolicy;
    use ltsp_workloads::find_benchmark;

    fn quick(policy: LatencyPolicy) -> RunConfig {
        RunConfig::new(CompileConfig::new(policy)).with_entry_scale(0.05)
    }

    #[test]
    fn mcf_gains_from_hlo_hints() {
        let m = MachineModel::itanium2();
        let bench = find_benchmark("429.mcf").unwrap();
        let base = run_benchmark(&bench, &m, &quick(LatencyPolicy::Baseline));
        let hlo = run_benchmark(&bench, &m, &quick(LatencyPolicy::HloHints));
        let gain = benchmark_gain(&bench, &base, &hlo);
        assert!(gain > 2.0, "mcf should gain from HLO hints, got {gain:.2}%");
    }

    #[test]
    fn flat_benchmarks_are_invariant() {
        let m = MachineModel::itanium2();
        let bench = find_benchmark("403.gcc").unwrap();
        let base = run_benchmark(&bench, &m, &quick(LatencyPolicy::Baseline));
        let hlo = run_benchmark(&bench, &m, &quick(LatencyPolicy::AllLoadsL3));
        assert_eq!(benchmark_gain(&bench, &base, &hlo), 0.0);
    }

    #[test]
    fn h264ref_regresses_without_threshold() {
        let m = MachineModel::itanium2();
        let bench = find_benchmark("464.h264ref").unwrap();
        let base = run_benchmark(&bench, &m, &quick(LatencyPolicy::Baseline));
        let n0 = run_benchmark(
            &bench,
            &m,
            &RunConfig::new(CompileConfig::new(LatencyPolicy::AllLoadsL3).with_threshold(0))
                .with_entry_scale(0.05),
        );
        let n32 = run_benchmark(
            &bench,
            &m,
            &RunConfig::new(CompileConfig::new(LatencyPolicy::AllLoadsL3).with_threshold(32))
                .with_entry_scale(0.05),
        );
        let g0 = benchmark_gain(&bench, &base, &n0);
        let g32 = benchmark_gain(&bench, &base, &n32);
        assert!(g0 < -0.5, "no threshold must hurt h264ref: {g0:.2}%");
        assert!(g32 > g0, "threshold 32 must recover: {g32:.2}% vs {g0:.2}%");
    }

    #[test]
    fn same_seed_same_baseline() {
        let m = MachineModel::itanium2();
        let bench = find_benchmark("444.namd").unwrap();
        let a = run_benchmark(&bench, &m, &quick(LatencyPolicy::Baseline));
        let b = run_benchmark(&bench, &m, &quick(LatencyPolicy::Baseline));
        assert_eq!(a.loop_cycles, b.loop_cycles, "determinism");
    }

    #[test]
    fn jobs_do_not_change_results() {
        let m = MachineModel::itanium2();
        let bench = find_benchmark("429.mcf").unwrap();
        let serial = run_benchmark(&bench, &m, &quick(LatencyPolicy::HloHints).with_jobs(1));
        let par = run_benchmark(&bench, &m, &quick(LatencyPolicy::HloHints).with_jobs(4));
        assert_eq!(serial.loop_cycles, par.loop_cycles);
        assert_eq!(serial.loops.len(), par.loops.len());
        for (a, b) in serial.loops.iter().zip(&par.loops) {
            assert_eq!(a.name, b.name, "loop order preserved");
            assert_eq!(a.counters.total, b.counters.total, "{}", a.name);
        }
    }

    #[test]
    fn accounting_pads_consistently() {
        let m = MachineModel::itanium2();
        let benchs = vec![find_benchmark("429.mcf").unwrap()];
        let base = run_suite(&benchs, &m, &quick(LatencyPolicy::Baseline));
        let var = run_suite(&benchs, &m, &quick(LatencyPolicy::HloHints));
        let (cb, cv) = suite_cycle_accounting(&benchs, &base, &var);
        assert!(cb.is_consistent());
        assert!(cv.is_consistent());
        assert!(cb.total > base.counters().total, "padding added");
    }
}
